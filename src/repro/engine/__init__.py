"""Walk execution engine: batched lockstep scheduling of walker ensembles.

The walk layer separates *transition rules* (:mod:`repro.walks.kernels`)
from *execution drivers*.  This package holds the batch drivers:

* :class:`WalkScheduler` — the scalar lockstep driver: advances N walkers
  round by round against one shared access-layer stack, deduplicating each
  round's frontier into a single ``query_many`` batch.  Its seeded paths are
  the conformance reference.
* :class:`VectorScheduler` — the opt-in array-native driver
  (:mod:`repro.engine.vector`): a whole round of a 10k–1M-walker ensemble
  advances in a handful of numpy vector ops directly over a CSR backend's
  ``indptr``/``indices``, billing identical ``QueryStats``, under its own
  explicitly separate seed lineage.

:meth:`repro.api.session.SamplingSession.run_ensemble` and the experiment
runner both execute through them (``mode="scalar"`` / ``mode="vector"``).
"""

from .scheduler import SchedulerPolicy, WalkScheduler
from .vector import (
    VectorEnsembleResult,
    VectorKernel,
    VectorScheduler,
    VectorWalkState,
    make_vector_kernel,
)

__all__ = [
    "SchedulerPolicy",
    "VectorEnsembleResult",
    "VectorKernel",
    "VectorScheduler",
    "VectorWalkState",
    "WalkScheduler",
    "make_vector_kernel",
]
