"""The walk scheduler: advance many transition kernels in lockstep.

The paper's whole contribution is cutting the *query* cost of random-walk
sampling; this module cuts the *execution* cost of running many walks.  A
:class:`WalkScheduler` drives N walkers round by round against one shared
access-layer stack:

1. **Frontier batching** — each round, the walkers' current nodes are
   deduplicated into one frontier and fetched in a single
   :meth:`~repro.api.interface.SocialNetworkAPI.query_many` call, so the
   per-query overhead of the middleware stack and the backend is amortised
   across all walkers (and, with a :class:`~repro.api.backend.CSRBackend`,
   served through its vectorised batch path).
2. **View-fed stepping** — walkers advance via
   :meth:`~repro.walks.base.RandomWalk.step_with_view`, consuming the views
   the batch already fetched: no per-walker ``query`` calls, not even cache
   hits.  Each walker's kernel draws from its own rng in exactly the order
   the sequential driver would, so a scheduled walk reproduces
   ``RandomWalk.run`` bit for bit under the same seed — paths, samples and,
   on the default cached stack, unique-query accounting.  (On a cache-less
   stack every issued query bills, so the scheduler's fewer calls genuinely
   cost less than ``run``'s per-step re-queries; budgets are still enforced
   exactly, and revisited frontiers are re-billed each round.)
3. **Policy** — per-walker step budgets (``steps`` may be a sequence), a
   shared query budget (exhaustion stops everyone gracefully, walkers at most
   one step apart), and a configurable dead-end rule (raise, stop the walker,
   or restart it at a fresh node).

One round costs one batched query (plus whatever metadata prefetch a kernel
performs), so the wall-clock win over per-walker sequential execution grows
with the ensemble size; ``benchmarks/bench_engine.py`` pins the speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from .. import obs
from ..api.interface import NodeView, SocialNetworkAPI
from ..exceptions import (
    DeadEndError,
    InvalidConfigurationError,
    InvalidStartNodeError,
    QueryBudgetExceededError,
)
from ..types import NodeId, Sample, Transition
from ..walks.base import (
    RandomWalk,
    WalkResult,
    budget_exhausted,
    budget_is_unlimited,
    budget_limit,
    implicit_step_cap,
)

#: How the scheduler reacts when a walker reaches a node with no neighbors.
DEAD_END_ACTIONS = ("raise", "stop", "restart")

#: Placeholder marking a frontier node whose batch fetch is in flight (used
#: by the lockstep loop to dedup the frontier against the view memo itself).
_FETCHING = object()


@dataclass(frozen=True)
class SchedulerPolicy:
    """Per-walker execution policy of a :class:`WalkScheduler`.

    Attributes:
        on_dead_end: ``"raise"`` propagates :class:`DeadEndError` (the
            sequential driver's behaviour, and the default), ``"stop"``
            retires the affected walker while the rest of the ensemble keeps
            going, ``"restart"`` resets the walker's kernel history and
            replants it at a random non-isolated node.
        max_restarts: Cap on restarts per walker under ``"restart"``
            (``None`` = unlimited); a walker out of restarts stops instead.
    """

    on_dead_end: str = "raise"
    max_restarts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.on_dead_end not in DEAD_END_ACTIONS:
            raise InvalidConfigurationError(
                f"on_dead_end must be one of {DEAD_END_ACTIONS}, got {self.on_dead_end!r}"
            )
        if self.max_restarts is not None and self.max_restarts < 0:
            raise InvalidConfigurationError("max_restarts must be non-negative")


@dataclass
class _Lane:
    """One walker's execution slot inside a running schedule."""

    walker: RandomWalk
    result: WalkResult = field(default_factory=WalkResult)
    max_steps: Optional[int] = None
    steps_taken: int = 0
    active: bool = True
    restarts: int = 0
    #: Node the lane should be replanted at next round (restart policy).
    pending_restart: Optional[NodeId] = None


class WalkScheduler:
    """Advance an ensemble of walkers in lockstep over one shared API stack.

    Args:
        api: The access-layer stack every walker queries through.
        policy: Dead-end / restart policy (defaults to the sequential
            driver's raise-on-dead-end behaviour).
    """

    def __init__(self, api: SocialNetworkAPI, policy: Optional[SchedulerPolicy] = None) -> None:
        self.api = api
        self.policy = policy if policy is not None else SchedulerPolicy()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        walkers: Sequence[RandomWalk],
        starts: Sequence[NodeId],
        steps: Union[int, Sequence[Optional[int]], None] = None,
        burn_in: int = 0,
        thinning: int = 1,
    ) -> List[WalkResult]:
        """Run every walker from its start node and return pooled results.

        Args:
            walkers: The walkers to advance (one lane each); their kernels,
                rngs and states are driven directly, so fixed seeds reproduce
                the exact paths ``RandomWalk.run`` would produce.
            starts: One start node per walker.
            steps: Shared step budget (int), one budget per walker
                (sequence), or ``None`` to walk until the shared query budget
                is exhausted (requires a finite budget on the stack).
            burn_in: Transitions to discard before emitting samples.
            thinning: Emit one sample every ``thinning`` transitions after
                the burn-in.

        Query-budget exhaustion is never an error: all lanes stop with
        ``stopped_by_budget=True`` and, because every lane steps between two
        shared batch fetches, no two walkers end more than one step apart.
        """
        if thinning < 1:
            raise ValueError("thinning must be at least 1")
        if burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        if len(walkers) != len(starts):
            raise ValueError("starts must provide one node per walker")
        if not walkers:
            return []
        per_walker_steps = self._per_walker_steps(steps, len(walkers))
        unbounded = [cap is None for cap in per_walker_steps]
        implicit_cap = None
        if any(unbounded):
            if budget_is_unlimited(self.api):
                raise ValueError(
                    "schedule would never terminate: provide steps (per walker "
                    "or shared) or an API with a finite query budget"
                )
            implicit_cap = implicit_step_cap(budget_limit(self.api))

        lanes = [
            _Lane(walker=walker, max_steps=cap)
            for walker, cap in zip(walkers, per_walker_steps)
        ]
        stopped = False

        # One view memo accumulates every fetched neighborhood for the whole
        # schedule — but only when the stack has an *unbounded* cache layer.
        # There a view is immutable once served (the shuffle layer randomises
        # below the cache) and a memoised node could never be billed again,
        # so revisits may skip the middleware without touching unique-query
        # accounting.  Without a cache every query bills, and under a bounded
        # LRU cache evicted revisits are billed again: in both cases
        # memoising would silently waive the cost model, so the memo is
        # cleared each round and revisits go back through the stack.
        cache = getattr(self.api, "cache", None)
        memoising = cache is not None and getattr(cache, "capacity", None) is None
        views: Dict[NodeId, NodeView] = {}

        # Round 0: place every walker on its start node off one shared batch.
        try:
            self._fetch_frontier(starts, views, memoising)
        except QueryBudgetExceededError:
            stopped = True
        if not stopped:
            for lane, start in zip(lanes, starts):
                lane.walker.reset()
                view = views[start]
                if view.degree == 0:
                    self._handle_dead_start(lane, start)
                    continue
                lane.walker.start_from_view(start, view)
                lane.result.path.append(start)
                if burn_in == 0:
                    lane.result.samples.append(self._make_sample(view, 0))

        # The common schedule — one shared integer step budget, default
        # dead-end behaviour, every lane placed — runs on a tight loop that
        # drives the kernels directly; anything fancier (per-walker budgets,
        # budget-driven termination, restart policies, custom walkers) takes
        # the general round loop below.
        if (
            not stopped
            and memoising
            and isinstance(steps, int)
            and self.policy.on_dead_end == "raise"
            and all(lane.active for lane in lanes)
            and self._kernels_drivable(walkers)
        ):
            stopped = self._run_lockstep(lanes, views, steps, burn_in, thinning)
            return self._finalize(lanes, stopped)

        registry = obs.metrics()
        round_index = 0
        while not stopped:
            self._retire_finished(lanes)
            active = [lane for lane in lanes if lane.active]
            if not active:
                break
            if implicit_cap is not None and round_index >= implicit_cap:
                break
            if any(lane.max_steps is None for lane in active) and budget_exhausted(self.api):
                stopped = True
                break
            round_index += 1
            round_started = time.perf_counter() if registry is not None else 0.0

            # 1. Advance every active lane off the views of the last batch.
            stepping = [lane for lane in active if lane.pending_restart is None]
            try:
                for lane in stepping:
                    view = views[lane.walker.current]
                    try:
                        transition = lane.walker.step_with_view(view)
                    except DeadEndError:
                        self._handle_dead_end(lane)
                        continue
                    lane.result.transitions.append(transition)
                    lane.result.path.append(transition.target)
                    lane.steps_taken += 1
            except QueryBudgetExceededError:
                # A kernel-internal metadata query (GNRW grouping prefetch,
                # MHRW degree fallback) ran the budget dry mid-round; lanes
                # before this one have stepped, later ones have not — at most
                # one step apart, as documented.
                stopped = True
                break

            # 2. One deduplicated batch serves double duty: it provides this
            # round's samples and prefetches next round's stepping views.
            frontier: List[NodeId] = []
            for lane in active:
                if not lane.active:
                    continue
                node = lane.pending_restart if lane.pending_restart is not None else lane.walker.current
                frontier.append(node)
            try:
                self._fetch_frontier(frontier, views, memoising)
            except QueryBudgetExceededError:
                stopped = True
                break
            if registry is not None:
                registry.observe("repro_scheduler_frontier_size", len(frontier))
                registry.observe(
                    "repro_scheduler_round_ms",
                    (time.perf_counter() - round_started) * 1000.0,
                )

            # 3. Replant restarted lanes and emit this round's samples.
            for lane in active:
                if not lane.active:
                    continue
                if lane.pending_restart is not None:
                    node = lane.pending_restart
                    lane.pending_restart = None
                    view = views[node]
                    if view.degree == 0:
                        self._handle_dead_end(lane)  # isolated restart node
                        continue
                    lane.walker.reset()
                    lane.walker.start_from_view(node, view)
                    lane.result.path.append(node)
                else:
                    view = views[lane.walker.current]
                step = lane.steps_taken
                if step >= burn_in and (step - burn_in) % thinning == 0:
                    lane.result.samples.append(self._make_sample(view, step))

        return self._finalize(lanes, stopped)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _finalize(self, lanes: Sequence[_Lane], stopped: bool) -> List[WalkResult]:
        """Stamp the shared counters and the budget flag onto every result.

        ``stopped_by_budget`` is set only on lanes that were still walking
        when the budget died — a lane that already completed its own step
        budget (or was retired by policy) finished normally.
        """
        unique = self.api.unique_queries
        total = self.api.total_queries
        registry = obs.metrics()
        if registry is not None:
            registry.set_gauge("repro_scheduler_unique_queries", unique)
            registry.set_gauge("repro_scheduler_total_queries", total)
            if total:
                # Dedupe ratio: how much of the issued query volume the
                # frontier dedup + cache turned into free revisits.
                registry.set_gauge(
                    "repro_scheduler_dedupe_ratio", 1.0 - (unique / total)
                )
        for lane in lanes:
            lane.result.unique_queries = unique
            lane.result.total_queries = total
            lane.result.stopped_by_budget = stopped and lane.active
        return [lane.result for lane in lanes]

    @staticmethod
    def _kernels_drivable(walkers: Sequence[RandomWalk]) -> bool:
        """Whether every walker's transitions can be driven kernel-directly.

        External subclasses may override the classic ``_choose_next`` /
        ``_on_transition`` hooks instead of supplying a kernel; those walkers
        must be advanced through ``step_with_view`` so their overrides run.
        """
        return all(
            walker.kernel is not None
            and type(walker)._choose_next is RandomWalk._choose_next
            and type(walker)._on_transition is RandomWalk._on_transition
            for walker in walkers
        )

    def _run_lockstep(
        self,
        lanes: Sequence[_Lane],
        views: Dict[NodeId, NodeView],
        steps: int,
        burn_in: int,
        thinning: int,
    ) -> bool:
        """Tight uniform-steps loop: every lane advances every round.

        Drives (kernel, rng, state) directly — skipping the per-step walker
        dispatch — while issuing exactly the same choices, queries and
        samples as the general loop.  Returns whether the query budget died.
        """
        api = self.api
        query_many = api.query_many
        slots = [
            (lane.walker.kernel, lane.walker.rng, lane.walker.state,
             lane.result.transitions.append, lane.result.path.append,
             lane.result.samples.append)
            for lane in lanes
        ]
        registry = obs.metrics()
        frontier: List[NodeId] = []
        for round_index in range(1, steps + 1):
            round_started = time.perf_counter() if registry is not None else 0.0
            frontier.clear()
            try:
                for kernel, rng, state, add_transition, add_path, _ in slots:
                    view = views[state.current]
                    if not view.neighbors:
                        raise DeadEndError(state.current)
                    target = kernel.choose(state, view, rng)
                    add_transition(Transition(state.current, target, state.step_index))
                    kernel.observe(state, target, view)
                    state.advance(target)
                    add_path(target)
                    if target not in views:
                        views[target] = _FETCHING
                        frontier.append(target)
            except QueryBudgetExceededError:
                for node in frontier:
                    del views[node]
                return True
            if frontier:
                try:
                    fetched = query_many(frontier)
                except QueryBudgetExceededError:
                    for node in frontier:
                        del views[node]
                    return True
                views.update(zip(frontier, fetched))
            if registry is not None:
                registry.observe("repro_scheduler_frontier_size", len(frontier))
                registry.observe(
                    "repro_scheduler_round_ms",
                    (time.perf_counter() - round_started) * 1000.0,
                )
            if round_index >= burn_in and (round_index - burn_in) % thinning == 0:
                query_cost = api.unique_queries
                for _, _, state, _, _, add_sample in slots:
                    view = views[state.current]
                    add_sample(
                        Sample(
                            node=view.node,
                            degree=view.degree,
                            attributes=dict(view.attributes),
                            step_index=round_index,
                            query_cost=query_cost,
                        )
                    )
        for lane in lanes:
            lane.steps_taken = steps
        return False

    def _fetch_frontier(
        self, nodes: Sequence[NodeId], memo: Dict[NodeId, NodeView], memoising: bool = True
    ) -> None:
        """Batch-fetch this round's frontier into ``memo``.

        When memoising, only not-yet-seen nodes are fetched (a cache below
        makes revisits free, so skipping them cannot change billing).  When
        not, every deduplicated frontier node goes through the stack — each
        round re-bills revisits exactly as a cache-less crawl must — and the
        memo is replaced by the round's views.
        """
        frontier: List[NodeId] = []
        seen = set()
        for node in nodes:
            if node not in seen and not (memoising and node in memo):
                seen.add(node)
                frontier.append(node)
        if not memoising:
            fetched = self.api.query_many(frontier) if frontier else []
            memo.clear()
            memo.update(zip(frontier, fetched))
            return
        if frontier:
            memo.update(zip(frontier, self.api.query_many(frontier)))

    def _make_sample(self, view: NodeView, step_index: int) -> Sample:
        return Sample(
            node=view.node,
            degree=view.degree,
            attributes=dict(view.attributes),
            step_index=step_index,
            query_cost=self.api.unique_queries,
        )

    def _retire_finished(self, lanes: Sequence[_Lane]) -> None:
        for lane in lanes:
            if lane.active and lane.max_steps is not None and lane.steps_taken >= lane.max_steps:
                lane.active = False

    def _handle_dead_start(self, lane: _Lane, start: NodeId) -> None:
        if self.policy.on_dead_end == "raise":
            raise InvalidStartNodeError(
                f"start node {start!r} has no neighbors; walks require degree >= 1"
            )
        self._handle_dead_end(lane)

    def _handle_dead_end(self, lane: _Lane) -> None:
        policy = self.policy
        if policy.on_dead_end == "raise":
            raise DeadEndError(lane.walker.current)
        if policy.on_dead_end == "restart" and (
            policy.max_restarts is None or lane.restarts < policy.max_restarts
        ):
            lane.restarts += 1
            lane.pending_restart = self._pick_restart(lane)
            if lane.pending_restart is not None:
                return
        lane.active = False

    def _pick_restart(self, lane: _Lane) -> Optional[NodeId]:
        """Draw a random non-isolated node from the backend (lane-seeded)."""
        from ..api.session import pick_start_node

        if not callable(getattr(self.api, "random_node", None)):
            return None
        return pick_start_node(self.api, lane.walker.rng)

    def _per_walker_steps(
        self, steps: Union[int, Sequence[Optional[int]], None], count: int
    ) -> List[Optional[int]]:
        if steps is None or isinstance(steps, int):
            caps: List[Optional[int]] = [steps] * count
        else:
            caps = list(steps)
            if len(caps) != count:
                raise ValueError("steps sequence must provide one budget per walker")
        for cap in caps:
            if cap is not None and cap < 0:
                raise ValueError("per-walker steps must be non-negative")
        return caps

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"WalkScheduler(api={self.api!r}, policy={self.policy!r})"
