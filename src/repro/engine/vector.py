"""Array-native walk engine: advance a whole ensemble per round in vector ops.

The scalar :class:`~repro.engine.scheduler.WalkScheduler` amortises the
*query* cost of an ensemble (one deduplicated ``query_many`` batch per round)
but still pays one Python-level kernel call and rng draw per walker per step.
For 10k–1M-walker ensembles over a CSR graph that interpreter loop is the
bottleneck: the adjacency arrays are already in memory (or memory-mapped) and
a whole round of transitions is a handful of numpy gathers.

This module is the opt-in columnar execution mode:

* :class:`VectorWalkState` holds the ensemble's positions as arrays of CSR
  indices (``current`` / ``previous`` / round counter);
* vector kernels (:class:`VectorSRWKernel`, :class:`VectorNBSRWKernel`,
  :class:`VectorMHRWKernel`, :class:`VectorCNRWKernel`) advance every walker
  with batched draws from **one** ``numpy.random.Generator`` — SRW is a
  single uniform gather, MHRW a vectorised degree-ratio compare, NB-SRW an
  index-shift over the flattened neighbor rows, and CNRW a vectorised
  fast-path pick with a per-walker fallback only for walkers whose
  circulation history actually constrains the hop;
* :class:`VectorScheduler` validates that the stack is vectorisable (an
  array-capable :class:`~repro.api.backend.CSRBackend` /
  ``MmapCSRBackend`` core, optionally an unbounded cache and a budget layer),
  short-circuits per-node :class:`~repro.api.interface.NodeView` construction
  entirely, and **bills the shared** :class:`~repro.api.middleware.QueryStats`
  **exactly as the scalar scheduler's** ``query_many`` **batches would** —
  including the partial-then-reject accounting of a budget dying mid-round.

Non-vectorisable configurations (remote / sharded / warehouse backends,
bounded LRU caches, rate limits, neighbor shuffling, tracing, kernels without
an array-native rule such as GNRW) raise the typed
:class:`~repro.exceptions.VectorizationError`;
``SamplingSession.run_ensemble(mode="vector")`` catches it and falls back to
the scalar lockstep path with a warning.

Determinism: the vector engine is an **explicitly separate seed lineage**
(``repro.rng.lineage_rng(seed, "vector")``).  Under a fixed seed a vector run
is bit-identical across repeated runs, across the CSR and mmap-CSR backends,
and across process fan-out — but it intentionally does *not* reproduce the
scalar golden paths, which remain the conformance reference.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs
from ..api.backend import CSRBackend
from ..api.interface import SocialNetworkAPI
from ..api.middleware import BackendAPI, BudgetLayer, CacheLayer, QueryStats, iter_layers
from ..exceptions import DeadEndError, InvalidStartNodeError, VectorizationError
from ..rng import SeedLike, lineage_rng
from ..types import NodeId, Sample, Transition
from ..walks.base import WalkResult, implicit_step_cap

#: ``previous`` value of a walker that has not moved yet (CSR indices are
#: always non-negative, so -1 can never collide with a real position).
NO_PREVIOUS = -1


@dataclass
class VectorWalkState:
    """The positions of a whole ensemble, as arrays of CSR indices.

    Attributes:
        current: ``int64[num_walkers]`` — where each walker is.
        previous: ``int64[num_walkers]`` — where each walker was one round
            ago (:data:`NO_PREVIOUS` before the first transition).
        step: Rounds advanced so far (shared: the ensemble is in lockstep).
    """

    current: np.ndarray
    previous: np.ndarray
    step: int = 0

    @classmethod
    def place(cls, starts: np.ndarray) -> "VectorWalkState":
        """Position the ensemble at ``starts`` (CSR indices) as fresh walks."""
        current = np.asarray(starts, dtype=np.int64).copy()
        previous = np.full(current.size, NO_PREVIOUS, dtype=np.int64)
        return cls(current=current, previous=previous, step=0)

    @property
    def num_walkers(self) -> int:
        return int(self.current.size)

    def advance(self, targets: np.ndarray) -> None:
        """Move every walker to its target, shifting current to previous."""
        self.previous = self.current
        self.current = targets
        self.step += 1


class VectorKernel:
    """Array-native transition rule: one call advances every walker.

    Subclasses implement :meth:`advance`; kernels with per-walker history
    (CNRW) allocate it in :meth:`begin`.  Randomness discipline: a kernel
    draws batched vectors from the rng it is passed, in a fixed number of
    calls per round, so a fixed vector-lineage seed reproduces the ensemble
    bit for bit.
    """

    #: Human-readable kernel name, overridden by subclasses.
    name = "vector-kernel"

    def begin(self, num_walkers: int) -> None:
        """Reset per-walker history for a fresh run of ``num_walkers``."""

    def advance(
        self,
        state: VectorWalkState,
        indptr: np.ndarray,
        indices: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return every walker's next CSR index (callers check dead ends)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r})"


def _uniform_pick(
    starts: np.ndarray, degs: np.ndarray, indices: np.ndarray, u: np.ndarray
) -> np.ndarray:
    """Gather one uniform neighbor per walker from the CSR rows.

    ``min(floor(u * deg), deg - 1)`` guards against ``u * deg`` rounding up
    to ``deg`` for u close to 1 at large degrees.
    """
    offsets = np.minimum((u * degs).astype(np.int64), degs - 1)
    return indices[starts + offsets]


class VectorSRWKernel(VectorKernel):
    """Memoryless uniform-neighbor rule: one batched draw per round."""

    name = "srw"

    def advance(self, state, indptr, indices, rng):
        cur = state.current
        starts = indptr[cur]
        degs = indptr[cur + 1] - starts
        return _uniform_pick(starts, degs, indices, rng.random(cur.size))


class VectorMHRWKernel(VectorKernel):
    """Metropolis-Hastings rule as a vectorised degree-ratio compare.

    Two batched draws per round (proposal, acceptance — always both drawn so
    the stream position is walker-independent).  Proposal degrees come
    straight from ``indptr`` — the same free metadata the scalar kernel peeks
    on a CSR stack, so nothing extra is billed.
    """

    name = "mhrw"

    def advance(self, state, indptr, indices, rng):
        cur = state.current
        n = cur.size
        u_proposal = rng.random(n)
        u_accept = rng.random(n)
        starts = indptr[cur]
        degs = indptr[cur + 1] - starts
        proposal = _uniform_pick(starts, degs, indices, u_proposal)
        proposal_degs = indptr[proposal + 1] - indptr[proposal]
        # accept iff u < min(1, deg/proposal_deg)  <=>  u * proposal_deg < deg
        # (a zero-degree proposal is rejected defensively, like the scalar
        # kernel's stay-in-place fallback on inconsistent data).
        accept = (proposal_degs > 0) & (u_accept * proposal_degs < degs)
        return np.where(accept, proposal, cur)


class VectorNBSRWKernel(VectorKernel):
    """Non-backtracking rule via an index shift over the flattened rows.

    Each round costs O(sum of current-node degrees): the rows of the current
    frontier are flattened once to locate the previous node's position, then
    a draw over ``degree - 1`` slots is shifted past it.  Row order is
    preserved, matching the scalar kernel's order-preserving filter.
    """

    name = "nbsrw"

    def advance(self, state, indptr, indices, rng):
        cur = state.current
        prev = state.previous
        n = cur.size
        starts = indptr[cur]
        degs = indptr[cur + 1] - starts
        u = rng.random(n)
        if state.step == 0:
            # No previous node anywhere: plain uniform pick.
            return _uniform_pick(starts, degs, indices, u)
        # Locate previous within each walker's row (simple graphs: at most
        # one occurrence).  walker[j] is the walker owning flat slot j,
        # local[j] its position within that walker's row.
        ends = np.cumsum(degs)
        total = int(ends[-1])
        row_offset = np.repeat(ends - degs, degs)
        local = np.arange(total, dtype=np.int64) - row_offset
        flat = np.repeat(starts, degs) + local
        walker = np.repeat(np.arange(n, dtype=np.int64), degs)
        hit = np.nonzero(indices[flat] == prev[walker])[0]
        prev_pos = np.full(n, -1, dtype=np.int64)
        prev_pos[walker[hit]] = local[hit]
        excluded = (prev >= 0) & (degs > 1) & (prev_pos >= 0)
        effective = degs - excluded.astype(np.int64)
        k = np.minimum((u * effective).astype(np.int64), effective - 1)
        k += (excluded & (k >= prev_pos)).astype(np.int64)
        return indices[starts + k]


class VectorCNRWKernel(VectorKernel):
    """Circulated-neighbors rule: vector fast path + per-walker history.

    The circulation bookkeeping (``b(u, v)`` buckets) is inherently
    per-walker, so each round draws the uniform vector once, takes the
    unconstrained pick for every walker, and then revisits **only** the
    walkers whose bucket for the pending hop is non-empty, re-picking among
    the remaining neighbors (row order preserved, the round's same uniform
    draw reused over the shrunken candidate list).  Histories live in CSR
    index space and reset per run.  Partially vectorised: the benchmark
    records its speedup but pins no floor for it.
    """

    name = "cnrw"

    def __init__(self, recurrence: str = "edge") -> None:
        if recurrence not in ("edge", "node"):
            raise ValueError("recurrence must be 'edge' or 'node'")
        self.recurrence = recurrence
        if recurrence == "node":
            self.name = "cnrw-node"
        self._histories: List[Dict[Tuple[int, int], set]] = []

    def begin(self, num_walkers: int) -> None:
        self._histories = [dict() for _ in range(num_walkers)]

    def advance(self, state, indptr, indices, rng):
        cur = state.current
        prev = state.previous
        n = cur.size
        starts = indptr[cur]
        degs = indptr[cur + 1] - starts
        u = rng.random(n)
        nxt = _uniform_pick(starts, degs, indices, u)
        edge_keyed = self.recurrence == "edge"
        cur_list = cur.tolist()
        prev_list = prev.tolist() if edge_keyed else None
        starts_list = starts.tolist()
        degs_list = degs.tolist()
        chosen_list = nxt.tolist()
        u_list = u.tolist()
        histories = self._histories
        for i in range(n):
            history = histories[i]
            key = (prev_list[i] if edge_keyed else NO_PREVIOUS, cur_list[i])
            bucket = history.get(key)
            chosen = chosen_list[i]
            if bucket:
                row = indices[starts_list[i]: starts_list[i] + degs_list[i]].tolist()
                remaining = [v for v in row if v not in bucket]
                if remaining:
                    chosen = remaining[
                        min(int(u_list[i] * len(remaining)), len(remaining) - 1)
                    ]
                    nxt[i] = chosen
            elif bucket is None:
                bucket = set()
                history[key] = bucket
            bucket.add(chosen)
            if len(bucket) >= degs_list[i]:
                # Full circulation of this neighborhood: reset the bucket
                # (dropping the key keeps long walks' memory bounded).
                del history[key]
        return nxt


#: Kernel factory names the vector engine can serve (normalised spellings).
VECTOR_KERNEL_NAMES = ("srw", "nbsrw", "mhrw", "cnrw", "cnrw_node")


def make_vector_kernel(name: str, **options) -> VectorKernel:
    """Build the array-native kernel for a walker factory name.

    Raises :class:`VectorizationError` for kernels without an array-native
    rule (GNRW variants, NB-CNRW, weighted choice) or unsupported options, so
    callers can fall back to the scalar path.
    """
    key = name.replace("-", "_").lower()
    recurrence = options.pop("recurrence", None)
    if options:
        raise VectorizationError(
            f"walker options {sorted(options)} are not supported by the "
            f"vector engine; drop them or run mode='scalar'"
        )
    if key == "srw":
        return VectorSRWKernel()
    if key in ("nbsrw", "nb_srw"):
        return VectorNBSRWKernel()
    if key == "mhrw":
        return VectorMHRWKernel()
    if key == "cnrw":
        return VectorCNRWKernel(recurrence if recurrence is not None else "edge")
    if key == "cnrw_node":
        return VectorCNRWKernel("node")
    raise VectorizationError(
        f"kernel {name!r} has no array-native implementation (vectorisable: "
        f"{', '.join(VECTOR_KERNEL_NAMES)}); use the scalar scheduler"
    )


@dataclass
class VectorEnsembleResult:
    """Everything one vector run produced, in columnar form.

    ``paths[r, i]`` is walker ``i``'s CSR index after round ``r`` (row 0 is
    the starts; a run killed by the budget while billing the starts has zero
    rows).  ``sample_rounds`` holds ``(round_index, unique_queries_after)``
    for every round that emitted samples — the per-walker
    :class:`~repro.types.Sample` objects are materialised lazily by
    :meth:`to_walk_results` so a million-walker run never builds them unless
    asked.
    """

    paths: np.ndarray
    sample_rounds: List[Tuple[int, int]]
    unique_queries: int
    total_queries: int
    stopped_by_budget: bool
    backend: CSRBackend

    @property
    def num_walkers(self) -> int:
        return int(self.paths.shape[1])

    @property
    def steps(self) -> int:
        return max(0, int(self.paths.shape[0]) - 1)

    def fingerprint(self) -> int:
        """CRC32 over the path matrix (endian-pinned): the golden identity."""
        data = np.ascontiguousarray(self.paths, dtype="<i8").tobytes()
        return zlib.crc32(data) & 0xFFFFFFFF

    def path_of(self, walker: int) -> List[NodeId]:
        """Walker ``walker``'s visited node ids (including the start)."""
        return self.backend.to_node_ids(self.paths[:, walker])

    def visit_counts(self) -> np.ndarray:
        """Per-node visit counts pooled over the whole ensemble."""
        n_nodes = len(self.backend)
        if self.paths.size == 0:
            return np.zeros(n_nodes, dtype=np.int64)
        return np.bincount(self.paths.ravel(), minlength=n_nodes)

    def to_walk_results(self) -> List[WalkResult]:
        """Materialise one scalar-compatible :class:`WalkResult` per walker."""
        indptr = self.backend.indptr
        attributes = self.backend.node_attributes
        rounds = int(self.paths.shape[0])
        results: List[WalkResult] = []
        for w in range(self.num_walkers):
            index_path = self.paths[:, w]
            path = self.backend.to_node_ids(index_path)
            transitions = [
                Transition(source=path[r], target=path[r + 1], step_index=r)
                for r in range(rounds - 1)
            ]
            samples: List[Sample] = []
            for round_index, query_cost in self.sample_rounds:
                node = path[round_index]
                i = int(index_path[round_index])
                node_attrs = attributes.get(node)
                samples.append(
                    Sample(
                        node=node,
                        degree=int(indptr[i + 1] - indptr[i]),
                        attributes=dict(node_attrs) if node_attrs else {},
                        step_index=round_index,
                        query_cost=query_cost,
                    )
                )
            results.append(
                WalkResult(
                    path=path,
                    samples=samples,
                    transitions=transitions,
                    unique_queries=self.unique_queries,
                    total_queries=self.total_queries,
                    stopped_by_budget=self.stopped_by_budget,
                )
            )
        return results


class VectorScheduler:
    """Advance an ensemble with array kernels over a vectorisable stack.

    Construction validates the stack: the innermost backend must be a
    :class:`CSRBackend` (the mmap snapshot backend subclasses it), and the
    only middleware the engine can honour is an *unbounded* cache (memoised
    billing, exactly like the scalar scheduler) and a budget layer (enforced
    with the same partial-then-reject accounting).  Anything else — trace,
    rate-limit, shuffle, bounded LRU, remote/sharded/warehouse backends —
    raises :class:`VectorizationError`; ``run_ensemble(mode="vector")``
    catches it and falls back to the scalar path with a warning.

    Billing mirrors the scalar scheduler's batched semantics on the shared
    :class:`QueryStats`: with an unbounded cache each distinct node is billed
    once per run (``unique == total == |distinct visited|``); without a cache
    each round's deduplicated frontier is re-billed.  The engine bypasses the
    cache itself (it never materialises views), so construct it over a fresh
    or reset stack — nodes a *prior scalar* crawl already cached are billed
    as cache hits (``total`` only) on their first vector touch only if this
    scheduler saw them before, not if only the cache layer did.
    """

    def __init__(self, api: SocialNetworkAPI) -> None:
        self.api = api
        self._memoising = False
        self._budget = None
        self._stats: Optional[QueryStats] = None
        self._backend: Optional[CSRBackend] = None
        for layer in iter_layers(api):
            if isinstance(layer, CacheLayer):
                if getattr(layer.cache, "capacity", None) is not None:
                    raise VectorizationError(
                        "a bounded LRU cache re-bills evicted revisits; the "
                        "vector engine cannot reproduce per-eviction billing "
                        "— use an unbounded cache or the scalar scheduler"
                    )
                self._memoising = True
            elif isinstance(layer, BudgetLayer):
                self._budget = layer.budget
            elif isinstance(layer, BackendAPI):
                backend = layer.backend
                if not isinstance(backend, CSRBackend):
                    raise VectorizationError(
                        f"backend {backend.name!r} is not array-capable; the "
                        "vector engine needs direct indptr/indices access "
                        "(CSRBackend or a CSR snapshot) — remote, sharded, "
                        "warehouse and in-memory backends stay on the scalar "
                        "path"
                    )
                self._backend = backend
                self._stats = layer.stats
            else:
                name = getattr(layer, "layer_name", type(layer).__name__)
                raise VectorizationError(
                    f"middleware layer {name!r} is not vectorisable (the "
                    "vector engine bypasses per-node view construction); "
                    "remove it or use the scalar scheduler"
                )
        if self._backend is None:
            raise VectorizationError(
                "the stack has no BackendAPI core to serve array queries from"
            )
        # Nodes this scheduler has billed (memoising stacks only): the
        # array-level mirror of "the cache below holds this node", so a
        # second run over the same stack bills revisits as cache hits.
        self._seen = (
            np.zeros(len(self._backend), dtype=bool) if self._memoising else None
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        kernel: Union[str, VectorKernel],
        starts: Sequence[NodeId],
        steps: Optional[int] = None,
        seed: SeedLike = None,
        burn_in: int = 0,
        thinning: int = 1,
    ) -> VectorEnsembleResult:
        """Run one walker per start node and return the columnar result.

        Args:
            kernel: A :class:`VectorKernel` or a walker factory name
                (``"srw"``, ``"nbsrw"``, ``"mhrw"``, ``"cnrw"``,
                ``"cnrw_node"``).
            starts: One start node id per walker.
            steps: Rounds to advance, or ``None`` to walk until the stack's
                finite query budget is exhausted.
            seed: Vector-lineage seed (see :func:`repro.rng.lineage_rng`);
                fixed seeds make the run bit-identical across repeats,
                backends and process fan-out.
            burn_in / thinning: Sample emission policy, as in the scalar
                scheduler.

        Budget exhaustion is never an error: the truncated result comes back
        with ``stopped_by_budget=True`` and the exact partial-then-reject
        billing of the scalar path (``unique == limit``,
        ``total == limit + 1`` when a round's frontier exceeded what was
        left).
        """
        if isinstance(kernel, str):
            kernel = make_vector_kernel(kernel)
        if thinning < 1:
            raise ValueError("thinning must be at least 1")
        if burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        starts = list(starts)
        if not starts:
            raise ValueError("starts must name at least one walker")
        backend = self._backend
        indptr = backend.indptr
        indices = backend.indices
        if steps is None:
            if self._budget is None or self._budget.unlimited:
                raise ValueError(
                    "schedule would never terminate: provide steps or an API "
                    "with a finite query budget"
                )
            max_rounds = implicit_step_cap(self._budget.limit)
            budget_driven = True
        else:
            if steps < 0:
                raise ValueError("steps must be non-negative")
            max_rounds = steps
            budget_driven = False

        start_indices = backend.to_indices(starts)
        n = start_indices.size
        rng = lineage_rng(seed, "vector")
        stats = self._stats
        if self._memoising:
            # Per-run frontier memo (the scalar scheduler's `views` dict):
            # resets every run, while `_seen` persists as the cache mirror.
            self._memo = np.zeros(len(backend), dtype=bool)
        sample_rounds: List[Tuple[int, int]] = []
        stopped = False

        # Round 0: bill the starts (one shared batch, like the scalar path).
        if not self._bill(start_indices):
            return VectorEnsembleResult(
                paths=np.empty((0, n), dtype=np.int64),
                sample_rounds=[],
                unique_queries=stats.unique,
                total_queries=stats.total,
                stopped_by_budget=True,
                backend=backend,
            )
        start_degs = indptr[start_indices + 1] - indptr[start_indices]
        if (start_degs == 0).any():
            bad = int(start_indices[int(np.argmax(start_degs == 0))])
            raise InvalidStartNodeError(
                f"start node {backend.to_node_ids([bad])[0]!r} has no "
                "neighbors; walks require degree >= 1"
            )
        state = VectorWalkState.place(start_indices)
        kernel.begin(n)
        rows: List[np.ndarray] = [state.current.copy()]
        if burn_in == 0:
            sample_rounds.append((0, stats.unique))

        registry = obs.metrics()
        for round_index in range(1, max_rounds + 1):
            round_started = time.perf_counter() if registry is not None else 0.0
            if budget_driven and self._budget.exhausted:
                stopped = True
                break
            cur = state.current
            degs = indptr[cur + 1] - indptr[cur]
            if not degs.all():
                dead = int(cur[int(np.argmax(degs == 0))])
                raise DeadEndError(backend.to_node_ids([dead])[0])
            targets = kernel.advance(state, indptr, indices, rng)
            state.advance(targets)
            rows.append(targets)
            if not self._bill(targets):
                # The frontier fetch died mid-round: the step is kept (the
                # scalar lockstep appends the target before fetching) but no
                # sample is emitted for it.
                stopped = True
                break
            if registry is not None:
                registry.observe(
                    "repro_vector_round_ms",
                    (time.perf_counter() - round_started) * 1000.0,
                )
            if round_index >= burn_in and (round_index - burn_in) % thinning == 0:
                sample_rounds.append((round_index, stats.unique))

        if registry is not None:
            registry.set_gauge("repro_vector_walkers", n)
            registry.set_gauge("repro_vector_unique_queries", stats.unique)
            registry.set_gauge("repro_vector_total_queries", stats.total)
            if stats.total:
                registry.set_gauge(
                    "repro_vector_dedupe_ratio", 1.0 - (stats.unique / stats.total)
                )
        return VectorEnsembleResult(
            paths=np.vstack(rows),
            sample_rounds=sample_rounds,
            unique_queries=stats.unique,
            total_queries=stats.total,
            stopped_by_budget=stopped,
            backend=backend,
        )

    # ------------------------------------------------------------------
    # Billing
    # ------------------------------------------------------------------
    def _bill(self, frontier: np.ndarray) -> bool:
        """Bill one round's frontier exactly as the scalar batches would.

        Memoising (unbounded cache below): nodes this scheduler already
        billed are cache hits (``total`` only, and only on their first
        occurrence per run — the scalar frontier skips memoised nodes
        entirely after that); never-seen distinct nodes bill ``unique`` and
        ``total`` once.  Non-memoising: every round's deduplicated frontier
        re-bills.  Returns ``False`` when the budget died, after spending
        whatever remained (``unique += r``) and counting the rejected
        attempt (``total += r + 1``) — the scalar sequential-degrade
        accounting.
        """
        stats = self._stats
        hits = 0
        if self._memoising:
            seen = self._seen
            candidates = frontier[~self._memo[frontier]]
            if candidates.size == 0:
                return True
            distinct = np.unique(candidates)
            self._memo[distinct] = True
            cached = seen[distinct]
            hits = int(cached.sum())
            fresh = distinct[~cached]
        else:
            fresh = np.unique(frontier)
        k = int(fresh.size)
        budget = self._budget
        if budget is not None and not budget.can_spend(k):
            remaining = budget.remaining or 0
            budget.spend(remaining)
            stats.unique += remaining
            # Cache hits a sequential replay would have served, the billed
            # partial fetch, then the rejected attempt that raised.
            stats.total += hits + remaining + 1
            if self._memoising:
                self._seen[fresh[:remaining]] = True
            return False
        if budget is not None and k:
            budget.spend(k)
        stats.unique += k
        stats.total += hits + k
        if self._memoising:
            self._seen[fresh] = True
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"VectorScheduler(backend={self._backend!r}, "
            f"memoising={self._memoising})"
        )
