"""Composable middleware layers over a :class:`~repro.api.backend.GraphBackend`.

The restrictive access interface of the paper is *policy-free*: a query takes
a node id and returns its neighborhood.  Everything a real crawler stacks on
top — a local cache that makes duplicate queries free (Section 2.3), a unique
query budget (the paper's cost model), a rate limiter on a simulated clock,
neighbor-order shuffling, and trace instrumentation — is expressed here as an
independent layer wrapping another :class:`~repro.api.interface.SocialNetworkAPI`.

Layers nest in the decorator style and are assembled by
:func:`repro.api.builder.build_api`; the canonical stack is::

    TraceLayer( CacheLayer( BudgetLayer( RateLimitLayer( ShuffleLayer(
        BackendAPI(backend) )))))

Each layer forwards both the single-node :meth:`query` and the batched
:meth:`query_many`, so multi-walker ensembles can amortise the per-query
overhead all the way down to ``backend.fetch_many``.  Attribute access not
handled by a layer is delegated to the wrapped API, which keeps the stack a
drop-in replacement for the legacy monolithic ``GraphAPI``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from .. import obs
from ..exceptions import NodeNotFoundError, QueryBudgetExceededError
from ..rng import SeedLike, make_rng
from ..types import NodeId
from .backend import GraphBackend
from .budget import QueryBudget
from .interface import NodeView, SocialNetworkAPI
from .ratelimit import RateLimitPolicy, SimulatedClock


@dataclass
class QueryStats:
    """Query-cost counters shared across one middleware stack.

    ``unique`` is the paper's query cost (billable fetches); ``total`` counts
    every ``query()`` call including cache hits.  The core :class:`BackendAPI`
    and the :class:`CacheLayer` of the same stack write to one shared instance
    so the counters stay correct wherever they are read from.
    """

    unique: int = 0
    total: int = 0

    def reset(self) -> None:
        self.unique = 0
        self.total = 0


class BackendAPI(SocialNetworkAPI):
    """The innermost layer: adapt a :class:`GraphBackend` to the query model.

    Every call that reaches this layer is a *billable* fetch; the cache layer
    above is what makes duplicates free.  Unknown attribute lookups fall
    through to the backend (e.g. ``api.graph`` for :class:`InMemoryBackend`).
    """

    def __init__(
        self,
        backend: GraphBackend,
        stats: Optional[QueryStats] = None,
        rng: SeedLike = None,
    ) -> None:
        self._backend = backend
        self.stats = stats if stats is not None else QueryStats()
        self._rng = make_rng(rng)

    @property
    def backend(self) -> GraphBackend:
        return self._backend

    def query(self, node: NodeId) -> NodeView:
        self.stats.total += 1
        record = self._backend.fetch(node)
        self.stats.unique += 1
        return NodeView(
            node=record.node, neighbors=record.neighbors, attributes=dict(record.attributes)
        )

    def query_many(self, nodes: Sequence[NodeId]) -> List[NodeView]:
        nodes = list(nodes)
        try:
            records = self._backend.fetch_many(nodes)
        except NodeNotFoundError as error:
            # Count exactly the calls a sequential loop would have attempted:
            # everything up to and including the missing node.
            failing = nodes.index(error.node) if error.node in nodes else len(nodes) - 1
            self.stats.total += failing + 1
            raise
        self.stats.total += len(nodes)
        self.stats.unique += len(records)
        return [
            NodeView(node=r.node, neighbors=r.neighbors, attributes=dict(r.attributes))
            for r in records
        ]

    @property
    def unique_queries(self) -> int:
        return self.stats.unique

    @property
    def total_queries(self) -> int:
        return self.stats.total

    def reset_counters(self) -> None:
        self.stats.reset()

    def peek_metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        return self._backend.metadata(node)

    def random_node(self, seed: SeedLike = None) -> NodeId:
        """Return a uniformly random node id to start a walk from."""
        rng = make_rng(seed) if seed is not None else self._rng
        return self._backend.sample_node(rng)

    def __getattr__(self, item):
        if item.startswith("_"):
            raise AttributeError(item)
        backend = self.__dict__.get("_backend")
        if backend is None:
            raise AttributeError(item)
        return getattr(backend, item)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"BackendAPI(backend={self._backend!r}, stats={self.stats!r})"


class APILayer(SocialNetworkAPI):
    """Base class for middleware: forward everything to the wrapped API.

    Subclasses override the calls they intercept.  ``__getattr__`` delegates
    any attribute this layer does not define to the wrapped API, guarding
    against the half-initialised states ``copy`` / ``pickle`` create (they
    bypass ``__init__``, so ``_inner`` may not exist yet — looking it up
    through ``self.__dict__`` avoids infinite recursion and raises a clean
    :class:`AttributeError` instead).
    """

    #: Short layer name used by :func:`describe_stack` and reprs.
    layer_name = "layer"

    def __init__(self, inner: SocialNetworkAPI) -> None:
        self._inner = inner

    @property
    def inner(self) -> SocialNetworkAPI:
        """The API this layer wraps."""
        return self._inner

    def query(self, node: NodeId) -> NodeView:
        return self._inner.query(node)

    def query_many(self, nodes: Sequence[NodeId]) -> List[NodeView]:
        return self._inner.query_many(nodes)

    @property
    def unique_queries(self) -> int:
        return self._inner.unique_queries

    @property
    def total_queries(self) -> int:
        return self._inner.total_queries

    def reset_counters(self) -> None:
        self._inner.reset_counters()

    def peek_metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        return self._inner.peek_metadata(node)

    def __getattr__(self, item):
        if item.startswith("_"):
            raise AttributeError(item)
        inner = self.__dict__.get("_inner")
        if inner is None:
            raise AttributeError(item)
        return getattr(inner, item)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}({self._inner!r})"


class CacheLayer(APILayer):
    """Local query cache: duplicate queries are answered for free.

    This is the cache of the paper's cost model (Section 2.3).  An unbounded
    cache reproduces the paper exactly; a bounded capacity gives the LRU
    variant where evicted nodes are billed again on re-query.
    """

    layer_name = "cache"

    def __init__(
        self,
        inner: SocialNetworkAPI,
        cache=None,
        capacity: Optional[int] = None,
        stats: Optional[QueryStats] = None,
    ) -> None:
        from .cache import make_cache

        super().__init__(inner)
        self.cache = cache if cache is not None else make_cache(capacity)
        resolved = stats if stats is not None else getattr(inner, "stats", None)
        self._stats = resolved if resolved is not None else QueryStats()

    def query(self, node: NodeId) -> NodeView:
        cached = self.cache.get(node)
        registry = obs.metrics()
        if cached is not None:
            self._stats.total += 1
            if registry is not None:
                registry.inc("repro_cache_hits_total")
            return cached
        view = self._inner.query(node)
        self.cache.put(node, view)
        if registry is not None:
            registry.inc("repro_cache_misses_total")
        return view

    def query_many(self, nodes: Sequence[NodeId]) -> List[NodeView]:
        order = list(nodes)
        if getattr(self.cache, "capacity", None) is not None:
            # Bounded (LRU) cache: a batch larger than the capacity would
            # evict its own entries between put and read-back, re-billing
            # nodes a sequential loop would have served from cache.  Batching
            # is a throughput feature of the paper's unbounded-cache model;
            # under an eviction study, exact sequential semantics win.
            return [self.query(node) for node in order]
        # Side-effect-free scan (peek touches neither counters nor recency),
        # so the budget-exhaustion fallback below can replay the batch as a
        # plain sequential loop without double counting anything.  The peeked
        # views double as the hit results, saving a second lookup pass.
        peek = self.cache.peek
        fresh = set()
        misses: List[NodeId] = []
        peeked: List[Optional[NodeView]] = []
        for node in order:
            view = peek(node)
            peeked.append(view)
            if view is None and node not in fresh:
                misses.append(node)
                fresh.add(node)
        fetched_views: Dict[NodeId, NodeView] = {}
        if misses:
            try:
                fetched = self._inner.query_many(misses)
            except (NodeNotFoundError, QueryBudgetExceededError) as error:
                # The batch was interrupted — by an unknown node, or by
                # budget exhaustion (in which case the budget layer billed
                # sequentially up to the stopping point and handed the
                # fetched views back on ``error.partial``).  Store whatever
                # was billed so the spent budget is not wasted, count the
                # cache hits a sequential loop would have served before the
                # failing node, then re-raise.
                partial = getattr(error, "partial", None) or []
                billed = set()
                for node, view in partial:
                    self.cache.put(node, view)
                    billed.add(node)
                if isinstance(error, NodeNotFoundError):
                    failing = error.node
                else:
                    failing = misses[len(partial)] if len(partial) < len(misses) else None
                # Nodes whose total the backend already counted: the billed
                # ones in the sequential-fallback path, or every attempted
                # fresh fetch in the atomic batch path.
                attempted = billed if partial else fresh
                counted = set()
                for node in order:
                    if node == failing:
                        break
                    if node in attempted and node not in counted:
                        counted.add(node)
                    else:
                        self._stats.total += 1  # hit or duplicate occurrence
                raise
            put = self.cache.put
            if len(misses) == len(order):
                # Every entry was a distinct uncached node (the batch-driver
                # common case): the fetch already is the result list, and the
                # backend billed everything — no per-node accounting left.
                for node, view in zip(misses, fetched):
                    put(node, view)
                self.cache.stats.misses += len(misses)
                registry = obs.metrics()
                if registry is not None:
                    registry.inc("repro_cache_misses_total", len(misses))
                return fetched
            for node, view in zip(misses, fetched):
                put(node, view)
                fetched_views[node] = view
        results: List[NodeView] = []
        hits = 0
        for node, view in zip(order, peeked):
            if view is not None:
                hits += 1  # cache hit (billed like a sequential loop)
            else:
                view = fetched_views[node]
                if node in fresh:
                    fresh.discard(node)  # billed by the backend during the batch
                else:
                    hits += 1  # duplicate occurrence after the fetch
            results.append(view)
        self._stats.total += hits
        cache_stats = self.cache.stats
        cache_stats.hits += hits
        cache_stats.misses += len(misses)
        registry = obs.metrics()
        if registry is not None:
            if hits:
                registry.inc("repro_cache_hits_total", hits)
            if misses:
                registry.inc("repro_cache_misses_total", len(misses))
        return results

    def reset_counters(self) -> None:
        self.cache.clear()
        self._inner.reset_counters()


class BudgetLayer(APILayer):
    """Enforce the unique-query budget of the paper's cost model.

    The budget is checked *before* the fetch (so an exhausted budget raises
    without touching the backend) and committed *after* it (so a missing node
    costs nothing, matching the legacy ``GraphAPI`` accounting).
    """

    layer_name = "budget"

    def __init__(self, inner: SocialNetworkAPI, budget: Optional[QueryBudget] = None) -> None:
        super().__init__(inner)
        if budget is None:
            budget = QueryBudget(None)
        elif isinstance(budget, int):
            budget = QueryBudget(budget)
        self.budget = budget
        self._stats: Optional[QueryStats] = getattr(inner, "stats", None)

    def query(self, node: NodeId) -> NodeView:
        budget = self.budget
        if not budget.can_spend(1):
            # A rejected attempt still counts as a call (the historic GraphAPI
            # incremented total_queries before the budget raised).
            if self._stats is not None:
                self._stats.total += 1
            registry = obs.metrics()
            if registry is not None:
                registry.inc("repro_budget_denied_total")
            raise QueryBudgetExceededError(budget.limit, spent=budget.spent)
        view = self._inner.query(node)
        budget.spend(1)
        return view

    def query_many(self, nodes: Sequence[NodeId]) -> List[NodeView]:
        order = list(nodes)
        budget = self.budget
        if budget.can_spend(len(order)):
            views = self._inner.query_many(order)
            budget.spend(len(views))
            return views
        # The batch exceeds the remaining budget: degrade to sequential
        # billing so the remaining budget is still spent (never forfeited)
        # and exhaustion raises at exactly the node a per-query loop would
        # have stopped on.  The views fetched before the raise travel on the
        # exception's ``partial`` attribute so a cache layer above can store
        # them — otherwise they would be re-billed on retry.
        collected: List = []
        try:
            for node in order:
                collected.append((node, self.query(node)))
        except (NodeNotFoundError, QueryBudgetExceededError) as error:
            error.partial = collected
            raise
        return [view for _, view in collected]

    def reset_counters(self) -> None:
        self.budget.reset()
        self._inner.reset_counters()


class RateLimitLayer(APILayer):
    """Charge each billable query against a rate-limit policy on a clock.

    The slot is acquired after the fetch succeeds, so missing nodes never
    consume rate-limit capacity; for the blocking policies used in the paper
    the simulated-clock behaviour is identical to acquiring first.
    """

    layer_name = "rate-limit"

    def __init__(
        self,
        inner: SocialNetworkAPI,
        policy: RateLimitPolicy,
        clock: Optional[SimulatedClock] = None,
    ) -> None:
        super().__init__(inner)
        self.rate_limit = policy
        self.clock = clock if clock is not None else SimulatedClock()

    def query(self, node: NodeId) -> NodeView:
        view = self._inner.query(node)
        self.rate_limit.acquire(self.clock, blocking=True)
        return view

    def query_many(self, nodes: Sequence[NodeId]) -> List[NodeView]:
        views = self._inner.query_many(nodes)
        for _ in views:
            self.rate_limit.acquire(self.clock, blocking=True)
        return views

    def reset_counters(self) -> None:
        self.rate_limit.reset()
        self._inner.reset_counters()


class ShuffleLayer(APILayer):
    """Randomise the neighbor order of each fresh fetch.

    Real APIs give no ordering guarantees.  Placed *below* the cache, the
    shuffled order of a node is fixed on first fetch and reused for every
    cache hit — a deterministic pagination order per node.
    """

    layer_name = "shuffle"

    def __init__(self, inner: SocialNetworkAPI, rng: SeedLike = None) -> None:
        super().__init__(inner)
        self._rng = make_rng(rng)

    def _shuffled(self, view: NodeView) -> NodeView:
        neighbors = list(view.neighbors)
        self._rng.shuffle(neighbors)
        return replace(view, neighbors=tuple(neighbors))

    def query(self, node: NodeId) -> NodeView:
        return self._shuffled(self._inner.query(node))

    def query_many(self, nodes: Sequence[NodeId]) -> List[NodeView]:
        return [self._shuffled(view) for view in self._inner.query_many(nodes)]


@dataclass
class QueryRecord:
    """One query call observed by the trace layer."""

    node: NodeId
    fresh: bool
    unique_queries_after: int
    total_queries_after: int


@dataclass
class QueryBatchRecord:
    """One ``query_many`` batch observed by the trace layer.

    A batch is a single trace entry (so tracing never forces the layers below
    back onto the per-node path), but it still carries the per-node freshness
    flags, so the node-level views (:attr:`QueryTrace.queried_nodes`,
    :attr:`QueryTrace.fresh_nodes`, :meth:`QueryTrace.frequency`) are
    indistinguishable from a sequential loop's records.
    """

    nodes: tuple
    fresh: tuple
    unique_queries_after: int
    total_queries_after: int

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass
class QueryTrace:
    """Accumulated trace of an instrumented crawl.

    ``records`` holds one entry per *call*: a :class:`QueryRecord` for each
    single query and a :class:`QueryBatchRecord` for each batch.  The
    node-level accessors flatten batches, so per-node frequency counting is
    unaffected by how the queries were grouped.
    """

    records: List[object] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def _node_events(self):
        for record in self.records:
            if isinstance(record, QueryBatchRecord):
                for node, fresh in zip(record.nodes, record.fresh):
                    yield node, fresh
            else:
                yield record.node, record.fresh

    @property
    def queried_nodes(self) -> List[NodeId]:
        return [node for node, _ in self._node_events()]

    @property
    def fresh_nodes(self) -> List[NodeId]:
        return [node for node, fresh in self._node_events() if fresh]

    @property
    def batches(self) -> List[QueryBatchRecord]:
        """The batch entries only (one per traced ``query_many`` call)."""
        return [record for record in self.records if isinstance(record, QueryBatchRecord)]

    def frequency(self) -> Dict[NodeId, int]:
        return Counter(node for node, _ in self._node_events())

    def clear(self) -> None:
        self.records.clear()


class TraceLayer(APILayer):
    """Record every query flowing through the stack.

    The experiment harness needs per-walk query traces (e.g. to audit that two
    samplers issued identical queries up to ordering); rather than pushing
    that bookkeeping into every walker, this outermost layer observes the
    stream.  A ``query_many`` call is forwarded as a batch and recorded as one
    :class:`QueryBatchRecord`, so tracing no longer disables the batch
    amortisation below it; per-node freshness is predicted against the cache
    below before the batch runs (exact for the paper's unbounded cache; under
    a bounded cache an intra-batch eviction may re-bill a node the prediction
    marked as a hit).  Batches interrupted by budget exhaustion or an unknown
    node are not recorded — the exception carries the authoritative state.
    """

    layer_name = "trace"

    def __init__(self, inner: SocialNetworkAPI, trace: Optional[QueryTrace] = None) -> None:
        super().__init__(inner)
        self.trace = trace if trace is not None else QueryTrace()

    def query(self, node: NodeId) -> NodeView:
        before_unique = self._inner.unique_queries
        view = self._inner.query(node)
        after_unique = self._inner.unique_queries
        self.trace.records.append(
            QueryRecord(
                node=node,
                fresh=after_unique > before_unique,
                unique_queries_after=after_unique,
                total_queries_after=self._inner.total_queries,
            )
        )
        return view

    def query_many(self, nodes: Sequence[NodeId]) -> List[NodeView]:
        order = list(nodes)
        fresh_flags = self._predict_fresh(order)
        views = self._inner.query_many(order)
        self.trace.records.append(
            QueryBatchRecord(
                nodes=tuple(order),
                fresh=tuple(fresh_flags),
                unique_queries_after=self._inner.unique_queries,
                total_queries_after=self._inner.total_queries,
            )
        )
        return views

    def _predict_fresh(self, order: Sequence[NodeId]) -> List[bool]:
        """Which batch entries will be billed, judged before the batch runs.

        Mirrors the miss scan of :meth:`CacheLayer.query_many`: the first
        occurrence of each uncached node is fresh.  Without a cache below,
        every entry is billed (duplicates included), matching the backend's
        sequential accounting.
        """
        cache = getattr(self._inner, "cache", None)
        peek = getattr(cache, "peek", None)
        if not callable(peek):
            return [True] * len(order)
        seen = set()
        flags: List[bool] = []
        for node in order:
            if node in seen:
                flags.append(False)
            else:
                seen.add(node)
                flags.append(peek(node) is None)
        return flags

    def reset_counters(self) -> None:
        self._inner.reset_counters()
        self.trace.clear()


def iter_layers(api: SocialNetworkAPI):
    """Yield the stack from the outermost layer down to the core API."""
    current = api
    while True:
        yield current
        if not isinstance(current, APILayer):
            return
        current = current.inner


def describe_stack(api: SocialNetworkAPI) -> str:
    """Return a compact arrow-joined description of a middleware stack."""
    names = []
    for layer in iter_layers(api):
        if isinstance(layer, BackendAPI):
            names.append(f"backend[{layer.backend.name}]")
        else:
            names.append(getattr(layer, "layer_name", type(layer).__name__))
    return " -> ".join(names)
