"""HTTP client backend: drive a remote graph service through the backend protocol.

The paper's whole premise is sampling a graph that is only reachable through a
remote, rate-limited API — yet until this module every backend was local.
:class:`HTTPGraphBackend` implements the two-method
:class:`~repro.api.backend.GraphBackend` protocol over a JSON-over-HTTP wire,
so every kernel, middleware layer and scheduler drives a graph served on
another machine *bit-identically* to a local run (the conformance suite in
``tests/test_backend_conformance.py`` asserts exactly that).

The wire format is the PR-3 crawl-record JSON — the same
``{"node": ..., "neighbors": [...], "attributes": {...}}`` lines a crawl dump
holds — served by :mod:`repro.server` from any existing backend:

========================  =====================================================
``GET /info``             service descriptor (format, version, name, nodes)
``GET /node/<id>``        one crawl record; 404 + error JSON when missing
``POST /nodes``           batched ``fetch_many``: ``{"nodes": [...]}`` in,
                          ``{"records": [...]}`` out (atomic: a missing node
                          404s the whole batch, mirroring a local batch fetch)
``GET /meta/<id>``        free profile summary (the crawl-dump ``meta`` line)
``GET /node-ids``         every node id, in backend order
========================  =====================================================

Node ids in URL paths are JSON-encoded then percent-encoded, so string ids
(unicode included) and integer ids stay distinguishable and round-trip losslessly.

The client keeps one persistent connection (HTTP/1.1 keep-alive), applies a
per-request timeout, and retries transient failures — timeouts, connection
resets, 5xx responses and malformed JSON bodies — a bounded number of times
with deterministic exponential backoff.  Failures map to typed exceptions:
node-level 404s become :class:`~repro.exceptions.NodeNotFoundError` (or
:class:`~repro.exceptions.ReplayMissError` when the server replays a crawl
dump), everything else becomes :class:`~repro.exceptions.RemoteBackendError`.

The transport is a purpose-built :class:`_LeanHTTPConnection` rather than
``http.client``: a crawl is thousands of tiny keep-alive exchanges, and
``http.client`` burns ~0.2 ms of pure CPU per response parsing headers
through ``email.parser`` — several times the cost of the fetch itself on
loopback, and the dominant term once a sharded cluster multiplies the
request count by the shard fan-out.  The lean connection also splits one
exchange into :meth:`~_LeanHTTPConnection.send_request` /
:meth:`~_LeanHTTPConnection.read_response`, which is what lets
:class:`~repro.cluster.ShardedBackend` *pipeline* a frontier batch: post
every shard's sub-batch first, then collect the responses while the shard
servers work concurrently.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.parse
import zlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import (
    NodeNotFoundError,
    QueryBudgetExceededError,
    RateLimitExceededError,
    RemoteBackendError,
    ReplayMissError,
)
from .. import obs
from ..obs import TRACE_HEADER, format_trace_header
from ..types import NodeId
from .backend import GraphBackend, RawRecord

#: Format identifier served by ``GET /info`` (and demanded by the client).
WIRE_FORMAT = "repro-graph-http"
#: Current wire-protocol version; bump on any incompatible change.
WIRE_VERSION = 1


# ----------------------------------------------------------------------
# Wire schema: the crawl-record JSON of repro.storage.replay, reused
# ----------------------------------------------------------------------
def record_to_wire(record: RawRecord) -> Dict[str, Any]:
    """Encode one :class:`RawRecord` as a crawl-record JSON object."""
    line: Dict[str, Any] = {"node": record.node, "neighbors": list(record.neighbors)}
    if record.attributes:
        line["attributes"] = record.attributes
    return line


def record_from_wire(payload: Any) -> RawRecord:
    """Decode a crawl-record JSON object back into a :class:`RawRecord`."""
    try:
        return RawRecord(
            node=payload["node"],
            neighbors=tuple(payload["neighbors"]),
            attributes=dict(payload.get("attributes", {})),
        )
    except (KeyError, TypeError) as exc:
        raise RemoteBackendError(
            f"malformed node record on the wire ({exc}): {payload!r}"
        ) from exc


def _coerce_id(value):
    """JSON encoder default: numpy integers travel as plain ints."""
    if isinstance(value, np.integer):
        return int(value)
    raise TypeError(
        f"node id of type {type(value).__name__} is not JSON-representable"
    )


_SCALAR_ID_TYPES = (str, int, float, bool, type(None), np.integer)


def _require_scalar_id(node: NodeId) -> None:
    """Reject node ids JSON would silently restructure.

    A tuple id is perfectly valid locally but JSON encodes it as a list, so
    it would come back unhashable and wrong-typed; failing fast with a typed
    error beats a confusing server-side 500 after the retries burn out.
    """
    if not isinstance(node, _SCALAR_ID_TYPES):
        raise RemoteBackendError(
            f"node id {node!r} cannot travel over the wire: only scalar "
            f"JSON values (str, int, float, bool, null) survive the round "
            f"trip, not {type(node).__name__}"
        )


def encode_node_id(node: NodeId) -> str:
    """Return the URL path segment for ``node``: JSON, percent-encoded.

    JSON keeps integer and string ids distinguishable (``5`` vs ``"5"``);
    percent-encoding with no safe characters keeps slashes, quotes, spaces and
    non-ASCII out of the request line.
    """
    _require_scalar_id(node)
    try:
        encoded = json.dumps(node, default=_coerce_id)
    except (TypeError, ValueError) as exc:
        raise RemoteBackendError(
            f"node id {node!r} cannot travel over the wire: {exc}"
        ) from exc
    return urllib.parse.quote(encoded, safe="")


def decode_node_id(segment: str) -> NodeId:
    """Invert :func:`encode_node_id` (raises ``ValueError`` on bad input)."""
    return json.loads(urllib.parse.unquote(segment))


def walk_fingerprint(path: Sequence[NodeId]) -> int:
    """CRC-32 fingerprint of a walk path (the conformance-suite formula).

    ``POST /walk`` returns this alongside the path so one integer proves a
    server-side walk step-for-step identical to a local run; the client
    recomputes it over the delivered path and refuses a mismatch.
    """
    return zlib.crc32(",".join(map(str, path)).encode("utf-8"))


class _WireError(Exception):
    """A malformed or truncated HTTP response on the lean transport.

    Treated exactly like a dropped connection: the client closes the socket
    and retries (bounded, with backoff) — never parses on hopefully.
    """


class _TransientResponse(Exception):
    """A complete, well-framed response worth retrying (5xx, garbage JSON).

    Unlike :class:`_WireError` the connection itself is healthy — the body
    was fully read — so the retry reuses the keep-alive socket.
    """


class _LeanHTTPConnection:
    """Minimal HTTP/1.1 keep-alive connection tuned for the graph wire.

    Speaks exactly the subset of HTTP/1.1 the graph service emits — one
    status line, plain ``Name: value`` header lines, a ``Content-Length``
    framed body (the server never chunks) — and parses it with
    ``bytes.partition`` instead of ``email.parser``, which cuts the fixed
    per-response CPU cost by an order of magnitude.  Any response outside
    that subset raises :class:`_WireError` and the caller reconnects.

    One exchange is two calls — :meth:`send_request` then
    :meth:`read_response` — so several connections can have requests in
    flight at once (the sharded tier's pipelined fan-out) while each single
    connection stays strictly request/response.
    """

    #: Hard cap on one header line (mirrors http.client's sanity limit).
    _MAX_LINE = 65536

    def __init__(self, scheme: str, host: str, port: Optional[int],
                 timeout: float, host_header: str,
                 extra_headers: str = "") -> None:
        self._scheme = scheme
        self._host = host
        self._port = port if port is not None else (443 if scheme == "https" else 80)
        self._timeout = timeout
        self._host_header = host_header
        #: Preformatted ``Name: value\r\n`` lines sent with every request
        #: (the per-tenant ``X-Api-Key`` of the multi-tenant service).
        self._extra_headers = extra_headers
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._reusable = True
        #: Raw ``X-Repro-Span`` value of the last response (trace echo),
        #: ``None`` when the server sent none.
        self.span_echo: Optional[str] = None

    def _connect(self) -> None:
        sock = socket.create_connection((self._host, self._port), timeout=self._timeout)
        # Small request/response exchanges must not stall behind Nagle +
        # delayed ACK; a crawl is thousands of tiny round trips.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if self._scheme == "https":
            import ssl

            sock = ssl.create_default_context().wrap_socket(
                sock, server_hostname=self._host
            )
        self._sock = sock
        self._file = sock.makefile("rb")
        self._reusable = True

    @property
    def reusable(self) -> bool:
        """Whether the connection survives for another exchange."""
        return self._reusable and self._sock is not None

    def close(self) -> None:
        sock = self._sock
        self._sock = None
        file = self._file
        self._file = None
        for closable in (file, sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass

    def send_request(self, method: str, path: str, body: Optional[bytes],
                     headers: str = "") -> None:
        """Send one request (connecting lazily); does not read the response.

        ``headers`` is an optional preformatted per-request addition (the
        ``X-Repro-Trace`` propagation header), appended after the
        per-connection extras.
        """
        if self._sock is None:
            self._connect()
        # Minimal headers: every line costs parse time on both ends.
        head = (f"{method} {path} HTTP/1.1\r\nHost: {self._host_header}\r\n"
                f"{self._extra_headers}{headers}")
        if body is not None:
            head += f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
        self._sock.sendall(head.encode("ascii") + b"\r\n" + (body or b""))

    def read_response(self) -> Tuple[int, bytes]:
        """Read one response; returns ``(status, body)``.

        Raises :class:`_WireError` on anything outside the service's HTTP
        subset and ``OSError`` (incl. timeouts) on transport failures.  After
        a ``Connection: close`` / HTTP/1.0 response :attr:`reusable` is
        False and the caller must drop the connection.
        """
        if self._file is None:
            raise _WireError("connection is not open")
        self.span_echo = None
        status_line = self._file.readline(self._MAX_LINE + 1)
        if not status_line:
            raise _WireError("connection closed before the status line")
        if len(status_line) > self._MAX_LINE:
            # Same cap as header lines: readline would otherwise hand back a
            # silent 64 KiB truncation whose remainder misparses as headers.
            raise _WireError("oversized status line")
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
            raise _WireError(f"malformed status line {status_line!r}")
        try:
            status = int(parts[1])
        except ValueError:
            raise _WireError(f"malformed status code in {status_line!r}") from None
        will_close = parts[0] == b"HTTP/1.0"
        content_length: Optional[int] = None
        header_count = 0
        while True:
            line = self._file.readline(self._MAX_LINE + 1)
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise _WireError("connection closed inside the response headers")
            if len(line) > self._MAX_LINE:
                raise _WireError("oversized response header line")
            header_count += 1
            if header_count > 100:
                # Mirror http.client's _MAXHEADERS: a hostile server could
                # otherwise stream header lines forever (the socket timeout
                # never fires while data keeps arriving).
                raise _WireError("got more than 100 response headers")
            name, separator, value = line.partition(b":")
            if not separator:
                raise _WireError(f"malformed header line {line!r}")
            name = name.strip().lower()
            if name == b"content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _WireError(f"malformed Content-Length {value!r}") from None
            elif name == b"connection":
                token = value.strip().lower()
                if token == b"close":
                    will_close = True
                elif token == b"keep-alive":
                    will_close = False
            elif name == b"transfer-encoding":
                # The graph service always frames with Content-Length; a
                # chunked body means this is not a graph service.
                raise _WireError("unsupported Transfer-Encoding response")
            elif name == b"x-repro-span":
                # Trace echo: the server's completed span (repro-trace v1).
                self.span_echo = value.strip().decode("iso-8859-1")
        if content_length is None:
            if not will_close:
                raise _WireError("keep-alive response without Content-Length")
            body = self._file.read()
        else:
            body = self._file.read(content_length)
            if len(body) != content_length:
                raise _WireError(
                    f"response body truncated at {len(body)}/{content_length} bytes"
                )
        if will_close:
            self._reusable = False
        return status, body


class HTTPGraphBackend(GraphBackend):
    """Serve fetches from a remote graph service over JSON/HTTP.

    Args:
        base_url: Service root, e.g. ``"http://127.0.0.1:8000"``.  An optional
            path prefix is honoured (``"http://host/graphs/fb"``).
        timeout: Per-request socket timeout in seconds.
        retries: How many times a failed request is retried (transient
            failures only: timeouts, connection errors, 5xx, malformed JSON).
            ``retries=3`` means up to four attempts in total.
        backoff: Base of the deterministic exponential backoff: retry ``k``
            (1-based) sleeps ``backoff * 2 ** (k - 1)`` seconds.
        sleep: The sleep callable (injectable so tests pin the exact backoff
            schedule without waiting it out).
        name: Backend name; defaults to ``http:<netloc>``.
        api_key: Optional tenant API key, sent as ``X-Api-Key`` with every
            request.  The multi-tenant asyncio service maps it to the
            tenant's server-side budget / rate-limit policy; servers without
            tenants ignore the header.  Server-side policy rejections come
            back typed: a 429 ``rate_limited`` raises
            :class:`~repro.exceptions.RateLimitExceededError` and a 429
            ``budget_exhausted`` raises
            :class:`~repro.exceptions.QueryBudgetExceededError`, exactly
            like the client-side middleware layers.

    The graph behind the service is treated as immutable for the lifetime of
    the client (like a snapshot or crawl dump): ``node_ids``, the ``/info``
    descriptor and the ``/meta`` profile summaries are fetched once and
    cached.  The metadata cache is what keeps ``peek_metadata``-hungry
    kernels (MHRW degree checks, GNRW grouping) from paying one network
    round trip per peek — peeks are free against local backends, so over the
    wire they must at least be free on revisit.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 10.0,
        retries: int = 3,
        backoff: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
        name: Optional[str] = None,
        api_key: Optional[str] = None,
    ) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", "https") or not parsed.netloc:
            raise ValueError(
                f"base_url must be an http:// or https:// URL, got {base_url!r}"
            )
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self._scheme = parsed.scheme
        self._netloc = parsed.netloc
        self._host = parsed.hostname or ""
        self._port = parsed.port
        self._prefix = parsed.path.rstrip("/")
        self._timeout = float(timeout)
        self._retries = int(retries)
        self._backoff = float(backoff)
        self._sleep = sleep
        self.api_key = api_key
        if api_key is not None and not api_key.isprintable():
            raise ValueError("api_key must be a printable string")
        self._extra_headers = f"X-Api-Key: {api_key}\r\n" if api_key else ""
        #: ``X-Repro-Span`` echo of the most recent response (trace fold-in).
        self._last_span_echo: Optional[str] = None
        self._connection: Optional[_LeanHTTPConnection] = None
        self._info: Optional[Dict[str, Any]] = None
        self._node_ids: Optional[List[NodeId]] = None
        self._meta_cache: Dict[NodeId, Dict[str, Any]] = {}
        self.name = name if name is not None else f"http:{parsed.netloc}"

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> _LeanHTTPConnection:
        return _LeanHTTPConnection(
            self._scheme, self._host, self._port, self._timeout, self._netloc,
            extra_headers=self._extra_headers,
        )

    def _drop_connection(self) -> None:
        connection = self._connection
        self._connection = None
        if connection is not None:
            connection.close()

    def close(self) -> None:
        """Close the persistent connection (the client stays usable)."""
        self._drop_connection()

    def __enter__(self) -> "HTTPGraphBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send(self, method: str, path: str, body: Optional[bytes],
              headers: str = ""):
        connection = self._connection
        if connection is None:
            connection = self._connect()
            self._connection = connection
        connection.send_request(method, path, body, headers)
        status, data = connection.read_response()
        self._last_span_echo = connection.span_echo
        if not connection.reusable:
            self._drop_connection()
        return status, data

    @staticmethod
    def _error_payload(data: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return {}
        return payload if isinstance(payload, dict) else {}

    def _interpret(self, method: str, path: str, status: int, data: bytes):
        """Map one complete response to its payload or a typed error.

        Raises :class:`_TransientResponse` for conditions worth retrying on
        the still-healthy connection (5xx, malformed JSON body), the typed
        node errors for node-level 404s, and
        :class:`~repro.exceptions.RemoteBackendError` for everything
        protocol-fatal.
        """
        if status >= 500:
            raise _TransientResponse(
                f"HTTP {status}: {self._error_payload(data).get('message', 'server error')}"
            )
        if status == 404:
            payload = self._error_payload(data)
            if "node" in payload:
                # A node-level miss, not a transport problem: surface the
                # same typed error a local backend would raise, with the
                # original (JSON round-tripped) node id.
                if payload.get("error") == "replay_miss":
                    raise ReplayMissError(
                        payload["node"], source=payload.get("source", self.base_url)
                    )
                raise NodeNotFoundError(payload["node"])
            raise RemoteBackendError(
                f"{method} {path} is not an endpoint of {self.base_url}: "
                f"{payload.get('message', 'unknown endpoint')}",
                url=self.base_url,
                status=status,
            )
        if status == 429:
            # Server-side per-tenant policy rejections (the multi-tenant
            # asyncio service) surface as the exact typed errors the local
            # middleware layers raise, so remote enforcement is
            # indistinguishable from a client-side budget or rate limit.
            payload = self._error_payload(data)
            if payload.get("error") == "budget_exhausted":
                raise QueryBudgetExceededError(
                    payload.get("limit"), spent=payload.get("spent")
                )
            if payload.get("error") == "rate_limited":
                raise RateLimitExceededError(retry_after=payload.get("retry_after"))
        if status != 200:
            raise RemoteBackendError(
                f"{method} {path} returned HTTP {status}: "
                f"{self._error_payload(data).get('message', 'unexpected status')}",
                url=self.base_url,
                status=status,
            )
        try:
            return json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise _TransientResponse(f"malformed JSON response body ({error})") from None

    def _request(self, method: str, path: str, body: Optional[bytes] = None):
        """One logical request: retries, backoff and error mapping live here.

        Telemetry rides along without changing the schedule: when a tracer
        is active, the logical request gets one ``client.request`` span
        whose context the first attempt carries over the wire (the common
        case pays for exactly one span), and each *retry* gets its own
        ``client.attempt`` child span carrying that attempt's wire context
        — so a retried request keeps its trace id and every server echo
        hangs off the span that was on the wire for its attempt.  Echo
        values are buffered raw and parsed at export, off the hot path.
        When the global metrics registry is enabled, requests, retries and
        latency are counted.
        """
        return self._request_attempts(method, path, body, obs.current_tracer())

    def _request_attempts(self, method, path, body, tracer):
        registry = obs.metrics()
        attempts = self._retries + 1
        failure = "no attempt made"
        started = 0.0
        endpoint = "/"
        if registry is not None:
            started = time.perf_counter()
            if path.strip("/"):
                endpoint = "/" + path.lstrip("/").split("/", 1)[0]
            registry.inc("repro_http_requests_total", endpoint=endpoint)
        span = None
        if tracer is not None:
            span = tracer.start_span(
                "client.request", kind="client", method=method, path=path,
                backend=self.name,
            )
        try:
            return self._run_attempts(
                method, path, body, tracer, registry, span,
                attempts, failure, started, endpoint,
            )
        finally:
            # Non-transient outcomes (404 -> NodeNotFoundError, bad batch
            # payloads) propagate from _interpret; the request span must
            # still land in the trace.
            if span is not None and span.duration_ms is None:
                tracer.finish(span)

    def _run_attempts(
        self, method, path, body, tracer, registry, span,
        attempts, failure, started, endpoint,
    ):
        for attempt in range(attempts):
            if attempt:
                # Deterministic exponential backoff: 1x, 2x, 4x, ... the base.
                self._sleep(self._backoff * (2 ** (attempt - 1)))
                if registry is not None:
                    registry.inc("repro_http_retries_total", endpoint=endpoint)
            attempt_span = None
            headers = ""
            if span is not None:
                if attempt:
                    attempt_span = tracer.start_span(
                        "client.attempt", kind="client",
                        parent=(span.trace_id, span.span_id),
                        attempt=attempt + 1,
                    )
                    wire_span_id = attempt_span.span_id
                else:
                    wire_span_id = span.span_id
                headers = f"{TRACE_HEADER}: " + format_trace_header(
                    span.trace_id, wire_span_id
                ) + "\r\n"
            try:
                status, data = self._send(method, path, body, headers)
            except (_WireError, OSError) as error:
                # Timeout, refused connection, reset mid-response, stale
                # keep-alive socket, malformed framing: drop the connection
                # and retry.
                self._drop_connection()
                failure = f"{type(error).__name__}: {error}"
                if span is not None:
                    (attempt_span or span).tags["error"] = failure
                    if attempt_span is not None:
                        tracer.finish(attempt_span)
                continue
            if span is not None:
                if attempt_span is not None:
                    tracer.finish(attempt_span)
                tracer.record_echo_raw(self._last_span_echo)
            try:
                result = self._interpret(method, path, status, data)
            except _TransientResponse as error:
                failure = str(error)
                if span is not None:
                    (attempt_span or span).tags["transient"] = failure
                continue
            if registry is not None:
                registry.observe(
                    "repro_http_request_ms",
                    (time.perf_counter() - started) * 1000.0,
                    endpoint=endpoint,
                )
            if span is not None:
                tracer.finish(span)
            return result
        if registry is not None:
            registry.inc("repro_http_failures_total", endpoint=endpoint)
        if span is not None:
            span.tags["failed"] = failure
        raise RemoteBackendError(
            f"{method} {path} failed after {attempts} attempt"
            f"{'s' if attempts != 1 else ''}: {failure}",
            url=self.base_url,
            attempts=attempts,
        )

    # ------------------------------------------------------------------
    # GraphBackend interface
    # ------------------------------------------------------------------
    def fetch(self, node: NodeId) -> RawRecord:
        payload = self._request("GET", f"{self._prefix}/node/{encode_node_id(node)}")
        return record_from_wire(payload)

    def _encode_batch(self, nodes: Sequence[NodeId]) -> Tuple[List[NodeId], bytes]:
        order = list(nodes)
        for node in order:
            _require_scalar_id(node)
        try:
            body = json.dumps({"nodes": order}, default=_coerce_id).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise RemoteBackendError(
                f"batch contains a node id that cannot travel over the wire: {exc}"
            ) from exc
        return order, body

    def _decode_batch(self, payload, count: int) -> List[RawRecord]:
        records = payload.get("records") if isinstance(payload, dict) else None
        if not isinstance(records, list) or len(records) != count:
            raise RemoteBackendError(
                f"POST /nodes returned {len(records) if isinstance(records, list) else 'no'}"
                f" records for a {count}-node batch",
                url=self.base_url,
            )
        return [record_from_wire(record) for record in records]

    def fetch_many(self, nodes: Sequence[NodeId]) -> List[RawRecord]:
        order, body = self._encode_batch(nodes)
        if not order:
            return []
        payload = self._request("POST", f"{self._prefix}/nodes", body=body)
        return self._decode_batch(payload, len(order))

    # ------------------------------------------------------------------
    # Pipelined batched fetch (the sharded tier's fan-out primitive)
    # ------------------------------------------------------------------
    def begin_fetch_many(self, nodes: Sequence[NodeId]):
        """Post a batched fetch without waiting for the response.

        Returns an opaque handle that **must** be passed to
        :meth:`end_fetch_many` before any other request on this client.  A
        :class:`~repro.cluster.ShardedBackend` posts every shard's sub-batch
        first and collects the responses afterwards, so the shard servers
        work concurrently instead of one waiting on the next — the request
        is a read, so a failed pipelined send is simply retried through the
        normal bounded-retry path by :meth:`end_fetch_many`.
        """
        order, body = self._encode_batch(nodes)
        sent = False
        span = None
        if order:
            tracer = obs.current_tracer()
            headers = ""
            if tracer is not None:
                span = tracer.start_span(
                    "client.request", kind="client", method="POST",
                    path="/nodes", pipelined=True, backend=self.name,
                )
                headers = f"{TRACE_HEADER}: " + format_trace_header(
                    span.trace_id, span.span_id
                ) + "\r\n"
            connection = self._connection
            if connection is None:
                connection = self._connect()
                self._connection = connection
            try:
                connection.send_request("POST", f"{self._prefix}/nodes", body, headers)
                sent = True
            except (_WireError, OSError):
                # Stale keep-alive socket, refused connection: drop it and
                # let end_fetch_many's fallback re-send with retries.
                self._drop_connection()
        return order, sent, span

    def end_fetch_many(self, handle) -> List[RawRecord]:
        """Collect the response of a :meth:`begin_fetch_many` call.

        Node-level misses raise the usual typed errors; transient failures
        (dropped connection, 5xx, malformed body) fall back to a fresh
        :meth:`fetch_many`, which re-sends the batch with the full bounded
        retry schedule.
        """
        order, sent, span = handle
        if not order:
            return []
        # ``sent`` with no live connection means something dropped it between
        # begin and end (it shouldn't happen in the strict begin/end pairing,
        # but a None here must degrade to the re-send path, not AttributeError).
        connection = self._connection
        tracer = obs.current_tracer() if span is not None else None
        if sent and connection is not None:
            path = f"{self._prefix}/nodes"
            try:
                status, data = connection.read_response()
                if not connection.reusable:
                    self._drop_connection()
                if tracer is not None:
                    tracer.finish(span)
                    tracer.record_echo_raw(connection.span_echo)
                    span = None
                return self._decode_batch(
                    self._interpret("POST", path, status, data), len(order)
                )
            except (_WireError, OSError):
                self._drop_connection()
            except _TransientResponse:
                pass
        if tracer is not None and span is not None:
            span.tags["fallback"] = True
            tracer.finish(span)
        return self.fetch_many(order)

    # ------------------------------------------------------------------
    # Server-side walks (the multi-tenant asyncio service's POST /walk)
    # ------------------------------------------------------------------
    def remote_walk(
        self,
        kernel: str,
        start: NodeId,
        *,
        seed: int = 0,
        steps: Optional[int] = None,
        budget: Optional[int] = None,
        burn_in: int = 0,
        thinning: int = 1,
    ) -> Dict[str, Any]:
        """Run a whole walk *server-side* in one round trip.

        ``POST /walk`` moves the O(steps) per-walk request stream to the
        server: the response carries the full path, its query accounting and
        a CRC-32 :func:`walk_fingerprint`, which is recomputed locally over
        the delivered path — a mismatch means the wire corrupted the walk
        and raises :class:`~repro.exceptions.RemoteBackendError`.  Servers
        without the endpoint (the threaded frontend) answer 404, which
        surfaces as the usual "not an endpoint" error.
        """
        _require_scalar_id(start)
        request: Dict[str, Any] = {"kernel": kernel, "start": start, "seed": seed}
        if steps is not None:
            request["steps"] = steps
        if budget is not None:
            request["budget"] = budget
        if burn_in:
            request["burn_in"] = burn_in
        if thinning != 1:
            request["thinning"] = thinning
        try:
            body = json.dumps(request, default=_coerce_id).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise RemoteBackendError(
                f"walk request cannot travel over the wire: {exc}"
            ) from exc
        payload = self._request("POST", f"{self._prefix}/walk", body=body)
        path = payload.get("path") if isinstance(payload, dict) else None
        if not isinstance(path, list):
            raise RemoteBackendError(
                f"malformed /walk response: {payload!r}", url=self.base_url
            )
        fingerprint = payload.get("fingerprint")
        if fingerprint != walk_fingerprint(path):
            raise RemoteBackendError(
                f"/walk fingerprint mismatch: server said {fingerprint}, the "
                f"delivered {len(path)}-node path hashes to "
                f"{walk_fingerprint(path)}",
                url=self.base_url,
            )
        return payload

    def _meta(self, node: NodeId) -> Dict[str, Any]:
        """The (cached) ``/meta`` payload of ``node``: one request, ever."""
        if node in self._meta_cache:
            return self._meta_cache[node]
        payload = self._request("GET", f"{self._prefix}/meta/{encode_node_id(node)}")
        if not isinstance(payload, dict):
            raise RemoteBackendError(f"malformed /meta response: {payload!r}")
        self._meta_cache[node] = payload
        return payload

    def metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        payload = self._meta(node)
        if "degree" not in payload and "attributes" not in payload:
            return None
        return {
            "degree": payload.get("degree"),
            "attributes": dict(payload.get("attributes", {})),
        }

    def contains(self, node: NodeId) -> bool:
        return bool(self._meta(node).get("contains"))

    def info(self) -> Dict[str, Any]:
        """The cached ``GET /info`` service descriptor (validated once)."""
        if self._info is None:
            payload = self._request("GET", f"{self._prefix}/info")
            if not isinstance(payload, dict) or payload.get("format") != WIRE_FORMAT:
                raise RemoteBackendError(
                    f"{self.base_url} is not a {WIRE_FORMAT} service "
                    f"(format={payload.get('format') if isinstance(payload, dict) else payload!r})",
                    url=self.base_url,
                )
            if payload.get("version") != WIRE_VERSION:
                raise RemoteBackendError(
                    f"{self.base_url} speaks wire version {payload.get('version')!r}; "
                    f"this client speaks version {WIRE_VERSION}",
                    url=self.base_url,
                )
            self._info = payload
        return dict(self._info)

    def node_ids(self) -> List[NodeId]:
        if self._node_ids is None:
            payload = self._request("GET", f"{self._prefix}/node-ids")
            nodes = payload.get("nodes") if isinstance(payload, dict) else None
            if not isinstance(nodes, list):
                raise RemoteBackendError(
                    f"malformed /node-ids response: {payload!r}", url=self.base_url
                )
            self._node_ids = nodes
        return list(self._node_ids)

    def __len__(self) -> int:
        return int(self.info()["nodes"])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"HTTPGraphBackend(base_url={self.base_url!r}, name={self.name!r})"
