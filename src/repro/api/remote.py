"""HTTP client backend: drive a remote graph service through the backend protocol.

The paper's whole premise is sampling a graph that is only reachable through a
remote, rate-limited API — yet until this module every backend was local.
:class:`HTTPGraphBackend` implements the two-method
:class:`~repro.api.backend.GraphBackend` protocol over a JSON-over-HTTP wire,
so every kernel, middleware layer and scheduler drives a graph served on
another machine *bit-identically* to a local run (the conformance suite in
``tests/test_backend_conformance.py`` asserts exactly that).

The wire format is the PR-3 crawl-record JSON — the same
``{"node": ..., "neighbors": [...], "attributes": {...}}`` lines a crawl dump
holds — served by :mod:`repro.server` from any existing backend:

========================  =====================================================
``GET /info``             service descriptor (format, version, name, nodes)
``GET /node/<id>``        one crawl record; 404 + error JSON when missing
``POST /nodes``           batched ``fetch_many``: ``{"nodes": [...]}`` in,
                          ``{"records": [...]}`` out (atomic: a missing node
                          404s the whole batch, mirroring a local batch fetch)
``GET /meta/<id>``        free profile summary (the crawl-dump ``meta`` line)
``GET /node-ids``         every node id, in backend order
========================  =====================================================

Node ids in URL paths are JSON-encoded then percent-encoded, so string ids
(unicode included) and integer ids stay distinguishable and round-trip losslessly.

The client keeps one persistent connection (HTTP/1.1 keep-alive), applies a
per-request timeout, and retries transient failures — timeouts, connection
resets, 5xx responses and malformed JSON bodies — a bounded number of times
with deterministic exponential backoff.  Failures map to typed exceptions:
node-level 404s become :class:`~repro.exceptions.NodeNotFoundError` (or
:class:`~repro.exceptions.ReplayMissError` when the server replays a crawl
dump), everything else becomes :class:`~repro.exceptions.RemoteBackendError`.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.parse
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import NodeNotFoundError, RemoteBackendError, ReplayMissError
from ..types import NodeId
from .backend import GraphBackend, RawRecord

#: Format identifier served by ``GET /info`` (and demanded by the client).
WIRE_FORMAT = "repro-graph-http"
#: Current wire-protocol version; bump on any incompatible change.
WIRE_VERSION = 1


# ----------------------------------------------------------------------
# Wire schema: the crawl-record JSON of repro.storage.replay, reused
# ----------------------------------------------------------------------
def record_to_wire(record: RawRecord) -> Dict[str, Any]:
    """Encode one :class:`RawRecord` as a crawl-record JSON object."""
    line: Dict[str, Any] = {"node": record.node, "neighbors": list(record.neighbors)}
    if record.attributes:
        line["attributes"] = record.attributes
    return line


def record_from_wire(payload: Any) -> RawRecord:
    """Decode a crawl-record JSON object back into a :class:`RawRecord`."""
    try:
        return RawRecord(
            node=payload["node"],
            neighbors=tuple(payload["neighbors"]),
            attributes=dict(payload.get("attributes", {})),
        )
    except (KeyError, TypeError) as exc:
        raise RemoteBackendError(
            f"malformed node record on the wire ({exc}): {payload!r}"
        ) from exc


def _coerce_id(value):
    """JSON encoder default: numpy integers travel as plain ints."""
    if isinstance(value, np.integer):
        return int(value)
    raise TypeError(
        f"node id of type {type(value).__name__} is not JSON-representable"
    )


_SCALAR_ID_TYPES = (str, int, float, bool, type(None), np.integer)


def _require_scalar_id(node: NodeId) -> None:
    """Reject node ids JSON would silently restructure.

    A tuple id is perfectly valid locally but JSON encodes it as a list, so
    it would come back unhashable and wrong-typed; failing fast with a typed
    error beats a confusing server-side 500 after the retries burn out.
    """
    if not isinstance(node, _SCALAR_ID_TYPES):
        raise RemoteBackendError(
            f"node id {node!r} cannot travel over the wire: only scalar "
            f"JSON values (str, int, float, bool, null) survive the round "
            f"trip, not {type(node).__name__}"
        )


def encode_node_id(node: NodeId) -> str:
    """Return the URL path segment for ``node``: JSON, percent-encoded.

    JSON keeps integer and string ids distinguishable (``5`` vs ``"5"``);
    percent-encoding with no safe characters keeps slashes, quotes, spaces and
    non-ASCII out of the request line.
    """
    _require_scalar_id(node)
    try:
        encoded = json.dumps(node, default=_coerce_id)
    except (TypeError, ValueError) as exc:
        raise RemoteBackendError(
            f"node id {node!r} cannot travel over the wire: {exc}"
        ) from exc
    return urllib.parse.quote(encoded, safe="")


def decode_node_id(segment: str) -> NodeId:
    """Invert :func:`encode_node_id` (raises ``ValueError`` on bad input)."""
    return json.loads(urllib.parse.unquote(segment))


class HTTPGraphBackend(GraphBackend):
    """Serve fetches from a remote graph service over JSON/HTTP.

    Args:
        base_url: Service root, e.g. ``"http://127.0.0.1:8000"``.  An optional
            path prefix is honoured (``"http://host/graphs/fb"``).
        timeout: Per-request socket timeout in seconds.
        retries: How many times a failed request is retried (transient
            failures only: timeouts, connection errors, 5xx, malformed JSON).
            ``retries=3`` means up to four attempts in total.
        backoff: Base of the deterministic exponential backoff: retry ``k``
            (1-based) sleeps ``backoff * 2 ** (k - 1)`` seconds.
        sleep: The sleep callable (injectable so tests pin the exact backoff
            schedule without waiting it out).
        name: Backend name; defaults to ``http:<netloc>``.

    The graph behind the service is treated as immutable for the lifetime of
    the client (like a snapshot or crawl dump): ``node_ids``, the ``/info``
    descriptor and the ``/meta`` profile summaries are fetched once and
    cached.  The metadata cache is what keeps ``peek_metadata``-hungry
    kernels (MHRW degree checks, GNRW grouping) from paying one network
    round trip per peek — peeks are free against local backends, so over the
    wire they must at least be free on revisit.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 10.0,
        retries: int = 3,
        backoff: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
        name: Optional[str] = None,
    ) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", "https") or not parsed.netloc:
            raise ValueError(
                f"base_url must be an http:// or https:// URL, got {base_url!r}"
            )
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self._scheme = parsed.scheme
        self._netloc = parsed.netloc
        self._prefix = parsed.path.rstrip("/")
        self._timeout = float(timeout)
        self._retries = int(retries)
        self._backoff = float(backoff)
        self._sleep = sleep
        self._connection: Optional[http.client.HTTPConnection] = None
        self._info: Optional[Dict[str, Any]] = None
        self._node_ids: Optional[List[NodeId]] = None
        self._meta_cache: Dict[NodeId, Dict[str, Any]] = {}
        self.name = name if name is not None else f"http:{parsed.netloc}"

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        connection_class = (
            http.client.HTTPSConnection
            if self._scheme == "https"
            else http.client.HTTPConnection
        )
        connection = connection_class(self._netloc, timeout=self._timeout)
        connection.connect()
        # Small request/response exchanges must not stall behind Nagle +
        # delayed ACK; a crawl is thousands of tiny round trips.
        connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return connection

    def _drop_connection(self) -> None:
        connection = self._connection
        self._connection = None
        if connection is not None:
            try:
                connection.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def close(self) -> None:
        """Close the persistent connection (the client stays usable)."""
        self._drop_connection()

    def __enter__(self) -> "HTTPGraphBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send(self, method: str, path: str, body: Optional[bytes]):
        connection = self._connection
        if connection is None:
            connection = self._connect()
            self._connection = connection
        headers = {"Accept": "application/json"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        data = response.read()
        if response.will_close:
            self._drop_connection()
        return response.status, data

    @staticmethod
    def _error_payload(data: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return {}
        return payload if isinstance(payload, dict) else {}

    def _request(self, method: str, path: str, body: Optional[bytes] = None):
        """One logical request: retries, backoff and error mapping live here."""
        attempts = self._retries + 1
        failure = "no attempt made"
        for attempt in range(attempts):
            if attempt:
                # Deterministic exponential backoff: 1x, 2x, 4x, ... the base.
                self._sleep(self._backoff * (2 ** (attempt - 1)))
            try:
                status, data = self._send(method, path, body)
            except (http.client.HTTPException, OSError) as error:
                # Timeout, refused connection, reset mid-response, stale
                # keep-alive socket: drop the connection and retry.
                self._drop_connection()
                failure = f"{type(error).__name__}: {error}"
                continue
            if status >= 500:
                failure = f"HTTP {status}: {self._error_payload(data).get('message', 'server error')}"
                continue
            if status == 404:
                payload = self._error_payload(data)
                if "node" in payload:
                    # A node-level miss, not a transport problem: surface the
                    # same typed error a local backend would raise, with the
                    # original (JSON round-tripped) node id.
                    if payload.get("error") == "replay_miss":
                        raise ReplayMissError(
                            payload["node"], source=payload.get("source", self.base_url)
                        )
                    raise NodeNotFoundError(payload["node"])
                raise RemoteBackendError(
                    f"{method} {path} is not an endpoint of {self.base_url}: "
                    f"{payload.get('message', 'unknown endpoint')}",
                    url=self.base_url,
                    status=status,
                )
            if status != 200:
                raise RemoteBackendError(
                    f"{method} {path} returned HTTP {status}: "
                    f"{self._error_payload(data).get('message', 'unexpected status')}",
                    url=self.base_url,
                    status=status,
                )
            try:
                return json.loads(data.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                failure = f"malformed JSON response body ({error})"
                continue
        raise RemoteBackendError(
            f"{method} {path} failed after {attempts} attempt"
            f"{'s' if attempts != 1 else ''}: {failure}",
            url=self.base_url,
            attempts=attempts,
        )

    # ------------------------------------------------------------------
    # GraphBackend interface
    # ------------------------------------------------------------------
    def fetch(self, node: NodeId) -> RawRecord:
        payload = self._request("GET", f"{self._prefix}/node/{encode_node_id(node)}")
        return record_from_wire(payload)

    def fetch_many(self, nodes: Sequence[NodeId]) -> List[RawRecord]:
        order = list(nodes)
        if not order:
            return []
        for node in order:
            _require_scalar_id(node)
        try:
            body = json.dumps({"nodes": order}, default=_coerce_id).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise RemoteBackendError(
                f"batch contains a node id that cannot travel over the wire: {exc}"
            ) from exc
        payload = self._request("POST", f"{self._prefix}/nodes", body=body)
        records = payload.get("records") if isinstance(payload, dict) else None
        if not isinstance(records, list) or len(records) != len(order):
            raise RemoteBackendError(
                f"POST /nodes returned {len(records) if isinstance(records, list) else 'no'}"
                f" records for a {len(order)}-node batch",
                url=self.base_url,
            )
        return [record_from_wire(record) for record in records]

    def _meta(self, node: NodeId) -> Dict[str, Any]:
        """The (cached) ``/meta`` payload of ``node``: one request, ever."""
        if node in self._meta_cache:
            return self._meta_cache[node]
        payload = self._request("GET", f"{self._prefix}/meta/{encode_node_id(node)}")
        if not isinstance(payload, dict):
            raise RemoteBackendError(f"malformed /meta response: {payload!r}")
        self._meta_cache[node] = payload
        return payload

    def metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        payload = self._meta(node)
        if "degree" not in payload and "attributes" not in payload:
            return None
        return {
            "degree": payload.get("degree"),
            "attributes": dict(payload.get("attributes", {})),
        }

    def contains(self, node: NodeId) -> bool:
        return bool(self._meta(node).get("contains"))

    def info(self) -> Dict[str, Any]:
        """The cached ``GET /info`` service descriptor (validated once)."""
        if self._info is None:
            payload = self._request("GET", f"{self._prefix}/info")
            if not isinstance(payload, dict) or payload.get("format") != WIRE_FORMAT:
                raise RemoteBackendError(
                    f"{self.base_url} is not a {WIRE_FORMAT} service "
                    f"(format={payload.get('format') if isinstance(payload, dict) else payload!r})",
                    url=self.base_url,
                )
            if payload.get("version") != WIRE_VERSION:
                raise RemoteBackendError(
                    f"{self.base_url} speaks wire version {payload.get('version')!r}; "
                    f"this client speaks version {WIRE_VERSION}",
                    url=self.base_url,
                )
            self._info = payload
        return dict(self._info)

    def node_ids(self) -> List[NodeId]:
        if self._node_ids is None:
            payload = self._request("GET", f"{self._prefix}/node-ids")
            nodes = payload.get("nodes") if isinstance(payload, dict) else None
            if not isinstance(nodes, list):
                raise RemoteBackendError(
                    f"malformed /node-ids response: {payload!r}", url=self.base_url
                )
            self._node_ids = nodes
        return list(self._node_ids)

    def __len__(self) -> int:
        return int(self.info()["nodes"])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"HTTPGraphBackend(base_url={self.base_url!r}, name={self.name!r})"
