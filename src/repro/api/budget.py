"""Query budgets.

Every experiment in the paper plots estimation quality against *query cost*
(the number of unique neighborhood queries).  A :class:`QueryBudget` caps that
cost so a walk stops exactly when the budget is exhausted, which is how the
error-versus-cost curves in Figures 6-11 are produced.
"""

from __future__ import annotations

from ..exceptions import QueryBudgetExceededError


class QueryBudget:
    """A consumable budget of unique queries.

    Args:
        limit: Maximum number of unique queries, or ``None`` for unlimited.
    """

    def __init__(self, limit=None) -> None:
        if limit is not None and limit < 0:
            raise ValueError("budget limit must be non-negative or None")
        self.limit = limit
        self.spent = 0

    @property
    def unlimited(self) -> bool:
        return self.limit is None

    @property
    def remaining(self):
        """Remaining queries, or ``None`` when unlimited."""
        if self.limit is None:
            return None
        return max(0, self.limit - self.spent)

    @property
    def exhausted(self) -> bool:
        return self.limit is not None and self.spent >= self.limit

    def can_spend(self, amount: int = 1) -> bool:
        """Return whether ``amount`` more queries fit in the budget."""
        if self.limit is None:
            return True
        return self.spent + amount <= self.limit

    def spend(self, amount: int = 1) -> None:
        """Consume ``amount`` queries, raising when the budget would overflow."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if not self.can_spend(amount):
            raise QueryBudgetExceededError(self.limit, spent=self.spent)
        self.spent += amount

    def reset(self) -> None:
        """Reset the spent counter to zero."""
        self.spent = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        limit = "unlimited" if self.limit is None else str(self.limit)
        return f"QueryBudget(spent={self.spent}, limit={limit})"
