"""Storage backends behind the restrictive access interface.

The paper's access model (Section 2.1) fixes *what* a sampler may ask — the
neighborhood of one node — but says nothing about *how* the answer is served.
This module separates the two concerns: a :class:`GraphBackend` is a raw
record store with exactly two operations, :meth:`~GraphBackend.fetch` and
:meth:`~GraphBackend.fetch_many`, while every policy (caching, budgets, rate
limits, shuffling, tracing) lives in the middleware stack of
:mod:`repro.api.middleware`.

Two backends ship with the library:

* :class:`InMemoryBackend` — adapts the dict-of-sets
  :class:`~repro.graphs.graph.Graph`, the substrate of every paper experiment;
* :class:`CSRBackend` — a compact array-based store (compressed sparse rows
  over contiguous integer indices) whose hot path avoids per-node set/list
  materialisation, for large synthetic graphs and batched crawls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import NodeNotFoundError
from ..graphs.graph import Graph
from ..types import Edge, NodeId

_EMPTY_ATTRS: Dict[str, Any] = {}


@dataclass(frozen=True)
class RawRecord:
    """The raw answer of one backend fetch: neighbors plus attributes.

    This is the storage-level twin of :class:`~repro.api.interface.NodeView`;
    the middleware core converts records into views so backends never need to
    know about the query-accounting types.
    """

    node: NodeId
    neighbors: Tuple[NodeId, ...]
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def degree(self) -> int:
        return len(self.neighbors)


class GraphBackend:
    """Protocol for raw neighborhood storage.

    Implementations answer per-node fetches and (optionally optimised) batch
    fetches.  They do **no** accounting: budgets, caches and rate limits are
    middleware concerns layered on top by :func:`repro.api.builder.build_api`.
    """

    #: Human-readable backend name used by reprs and benchmarks.
    name = "backend"

    def fetch(self, node: NodeId) -> RawRecord:
        """Return the :class:`RawRecord` of ``node`` or raise
        :class:`~repro.exceptions.NodeNotFoundError`."""
        raise NotImplementedError

    def fetch_many(self, nodes: Sequence[NodeId]) -> List[RawRecord]:
        """Return one record per node, in order (missing nodes raise)."""
        return [self.fetch(node) for node in nodes]

    def contains(self, node: NodeId) -> bool:
        """Return whether ``node`` exists in the store."""
        raise NotImplementedError

    def metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        """Return the free profile summary of ``node`` (or ``None``).

        Mirrors the inline neighbor metadata of real OSN responses: degree and
        attributes, but never the neighbor list, and never billed.
        """
        return None

    def node_ids(self) -> List[NodeId]:
        """Return every node id (used for uniform start-node selection)."""
        raise NotImplementedError

    def sample_node(self, rng) -> NodeId:
        """Draw one uniformly random node id.

        The default materialises :meth:`node_ids`; stores that can index
        nodes directly (e.g. identity-id CSR) override it so start-node
        selection stays O(1) even for graphs larger than RAM.
        """
        nodes = self.node_ids()
        return nodes[int(rng.integers(0, len(nodes)))]

    def close(self) -> None:
        """Release any resources the backend holds.

        Purely local backends hold none, so the default is a no-op; backends
        with real resources (keep-alive sockets, shard dispatch pools)
        override it.  Every backend is therefore a context manager, so
        ``with as_backend(source) as backend: ...`` closes connections
        deterministically no matter what kind of backend the source resolved
        to.
        """

    def __enter__(self) -> "GraphBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.node_ids())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r})"


class InMemoryBackend(GraphBackend):
    """Serve fetches from an in-memory :class:`~repro.graphs.graph.Graph`."""

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self.name = f"memory:{graph.name}"

    @property
    def graph(self) -> Graph:
        """The underlying graph (ground truth / tests only)."""
        return self._graph

    def fetch(self, node: NodeId) -> RawRecord:
        if not self._graph.has_node(node):
            raise NodeNotFoundError(node)
        return RawRecord(
            node=node,
            neighbors=tuple(self._graph.neighbors(node)),
            attributes=self._graph.attributes(node),
        )

    def contains(self, node: NodeId) -> bool:
        return self._graph.has_node(node)

    def metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        if not self._graph.has_node(node):
            return None
        return {
            "degree": self._graph.degree(node),
            "attributes": self._graph.attributes(node),
        }

    def node_ids(self) -> List[NodeId]:
        return self._graph.nodes()

    def __len__(self) -> int:
        return self._graph.number_of_nodes


class CSRBackend(GraphBackend):
    """Compressed-sparse-row adjacency over contiguous integer indices.

    The adjacency of node ``i`` (by internal index) is
    ``indices[indptr[i]:indptr[i + 1]]``.  Arbitrary hashable node ids are
    supported through an id table; when the ids are exactly ``0 .. n-1`` the
    reverse mapping is skipped entirely, which is the fast path for the
    synthetic graphs used in the scale benchmarks.

    Build one with :meth:`from_graph` or :meth:`from_edges`.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        node_ids: Optional[Sequence[NodeId]] = None,
        attributes: Optional[Mapping[NodeId, Dict[str, Any]]] = None,
        name: str = "csr",
    ) -> None:
        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._indices = np.asarray(indices, dtype=np.int64)
        if self._indptr.ndim != 1 or self._indptr.size == 0:
            raise ValueError("indptr must be a non-empty 1-d array")
        if int(self._indptr[-1]) != self._indices.size:
            raise ValueError("indptr[-1] must equal len(indices)")
        n = self._indptr.size - 1
        if node_ids is None:
            # Identity ids 0..n-1: keep them implicit (materialised on demand
            # by node_ids()) so constructing a backend over huge — possibly
            # memory-mapped — arrays stays O(1) in the node count.
            self._ids: Optional[List[NodeId]] = None
            self._identity = True
            self._index: Dict[NodeId, int] = {}
        else:
            if len(node_ids) != n:
                raise ValueError("node_ids length must match indptr")
            self._ids = list(node_ids)
            self._identity = self._ids == list(range(n))
            self._index = {} if self._identity else {nid: i for i, nid in enumerate(self._ids)}
        self._attributes = dict(attributes) if attributes else {}
        self.name = name

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph, name: Optional[str] = None) -> "CSRBackend":
        """Compile a :class:`Graph` into CSR form (attributes carried over)."""
        ids = graph.nodes()
        index = {nid: i for i, nid in enumerate(ids)}
        degrees = np.fromiter(
            (graph.degree(nid) for nid in ids), dtype=np.int64, count=len(ids)
        )
        indptr = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        cursor = indptr[:-1].copy()
        for i, nid in enumerate(ids):
            for neighbor in graph.neighbors(nid):
                indices[cursor[i]] = index[neighbor]
                cursor[i] += 1
        attributes = {nid: graph.attributes(nid) for nid in ids if graph.attributes(nid)}
        return cls(
            indptr,
            indices,
            node_ids=ids,
            attributes=attributes,
            name=name or f"csr:{graph.name}",
        )

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        num_nodes: Optional[int] = None,
        name: str = "csr",
    ) -> "CSRBackend":
        """Build from undirected integer edges ``(u, v)`` with ids ``0..n-1``.

        Each input edge is stored in both directions; duplicate edges are
        dropped.  This path is fully vectorised and is how the benchmarks
        materialise 100k+-node graphs in well under a second.
        """
        edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edge_array.size == 0:
            raise ValueError("edge list must be non-empty")
        edge_array = edge_array.reshape(-1, 2).astype(np.int64)
        # Drop self-loops, canonicalise, dedupe, then mirror.
        mask = edge_array[:, 0] != edge_array[:, 1]
        edge_array = edge_array[mask]
        if edge_array.size == 0:
            raise ValueError("edge list must contain at least one non-self-loop edge")
        lo = np.minimum(edge_array[:, 0], edge_array[:, 1])
        hi = np.maximum(edge_array[:, 0], edge_array[:, 1])
        unique = np.unique(np.stack([lo, hi], axis=1), axis=0)
        sources = np.concatenate([unique[:, 0], unique[:, 1]])
        targets = np.concatenate([unique[:, 1], unique[:, 0]])
        min_id = int(unique.min())
        max_id = int(unique.max())
        if min_id < 0:
            raise ValueError(f"edge node ids must be non-negative (found {min_id})")
        n = int(num_nodes) if num_nodes is not None else max_id + 1
        if max_id >= n:
            raise ValueError(
                f"edge references node {max_id} but num_nodes is {n}; "
                "node ids must lie in 0..num_nodes-1"
            )
        order = np.argsort(sources, kind="stable")
        sources = sources[order]
        targets = targets[order]
        counts = np.bincount(sources, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, targets, name=name)

    # ------------------------------------------------------------------
    # GraphBackend interface
    # ------------------------------------------------------------------
    def _index_of(self, node: NodeId) -> int:
        if self._identity:
            if isinstance(node, (int, np.integer)) and 0 <= node < self._indptr.size - 1:
                return int(node)
            raise NodeNotFoundError(node)
        try:
            return self._index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def fetch(self, node: NodeId) -> RawRecord:
        i = self._index_of(node)
        row = self._indices[self._indptr[i]:self._indptr[i + 1]]
        if self._identity:
            neighbors = tuple(row.tolist())
        else:
            ids = self._ids
            neighbors = tuple(ids[j] for j in row.tolist())
        attributes = self._attributes.get(node)
        return RawRecord(
            node=node,
            neighbors=neighbors,
            attributes=dict(attributes) if attributes else {},
        )

    def fetch_many(self, nodes: Sequence[NodeId]) -> List[RawRecord]:
        indptr = self._indptr
        indices = self._indices
        attributes = self._attributes
        records: List[RawRecord] = []
        if self._identity and not attributes:
            # Hot path: one type/bounds check + one slice per node, no dict
            # work.  The type check mirrors _index_of so a float or string id
            # raises NodeNotFoundError exactly like fetch() would.
            n = indptr.size - 1
            for node in nodes:
                if not (isinstance(node, (int, np.integer)) and 0 <= node < n):
                    raise NodeNotFoundError(node)
                i = int(node)
                records.append(
                    RawRecord(
                        node=node,
                        neighbors=tuple(indices[indptr[i]:indptr[i + 1]].tolist()),
                        attributes={},
                    )
                )
            return records
        return [self.fetch(node) for node in nodes]

    def contains(self, node: NodeId) -> bool:
        if self._identity:
            return isinstance(node, (int, np.integer)) and 0 <= node < self._indptr.size - 1
        return node in self._index

    def metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        if not self.contains(node):
            return None
        i = self._index_of(node)
        return {
            "degree": int(self._indptr[i + 1] - self._indptr[i]),
            "attributes": dict(self._attributes.get(node, _EMPTY_ATTRS)),
        }

    def node_ids(self) -> List[NodeId]:
        if self._ids is None:
            return list(range(self._indptr.size - 1))
        return list(self._ids)

    def sample_node(self, rng) -> NodeId:
        if self._ids is None:
            # Identity ids: node_ids() is range(n), so index i IS the id —
            # draw it directly instead of materialising an n-element list.
            return int(rng.integers(0, self._indptr.size - 1))
        return self._ids[int(rng.integers(0, len(self._ids)))]

    @property
    def identity_ids(self) -> bool:
        """Whether the node ids are exactly ``0..n-1`` (stored implicitly)."""
        return self._identity

    def to_indices(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Map node ids to internal CSR indices as one int64 array.

        The array-native walk engine positions walkers by CSR index; this is
        the bulk twin of ``_index_of`` (missing ids raise
        :class:`~repro.exceptions.NodeNotFoundError` identically).
        """
        if self._identity:
            n = self._indptr.size - 1
            for node in nodes:
                if not (isinstance(node, (int, np.integer)) and 0 <= node < n):
                    raise NodeNotFoundError(node)
            return np.asarray(nodes, dtype=np.int64).reshape(-1)
        return np.fromiter(
            (self._index_of(node) for node in nodes), dtype=np.int64, count=len(nodes)
        )

    def to_node_ids(self, indices: np.ndarray) -> List[NodeId]:
        """Map internal CSR indices back to node ids (inverse of to_indices)."""
        if self._ids is None:
            return [int(i) for i in np.asarray(indices).reshape(-1)]
        ids = self._ids
        return [ids[int(i)] for i in np.asarray(indices).reshape(-1)]

    def __len__(self) -> int:
        return self._indptr.size - 1

    @property
    def indptr(self) -> np.ndarray:
        """The CSR row-pointer array (read-only view; used by snapshots)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """The CSR column-index array (read-only view; used by snapshots)."""
        return self._indices

    @property
    def node_attributes(self) -> Mapping[NodeId, Dict[str, Any]]:
        """Per-node attribute mapping (nodes without attributes omitted)."""
        return self._attributes

    @property
    def number_of_edges(self) -> int:
        return int(self._indices.size) // 2

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CSRBackend(name={self.name!r}, nodes={len(self)}, "
            f"edges={self.number_of_edges})"
        )


def as_backend(source) -> GraphBackend:
    """Coerce ``source`` into a :class:`GraphBackend`.

    Accepts an existing backend (returned unchanged), a
    :class:`~repro.graphs.graph.Graph` (wrapped in :class:`InMemoryBackend`),
    an ``http://`` / ``https://`` URL (driven remotely through
    :class:`~repro.api.remote.HTTPGraphBackend`), a ``cluster://`` URL list
    or ``cluster.json`` manifest (a consistent-hashed shard tier driven
    through :class:`~repro.cluster.ShardedBackend`), or an on-disk source
    given as a ``str`` / :class:`~pathlib.Path`: a CSR snapshot directory
    (served memory-mapped through :class:`~repro.storage.MmapCSRBackend`), a
    shard directory written by :func:`~repro.cluster.partition_snapshot`, a
    crawl-dump file (replayed through :class:`~repro.storage.ReplayBackend`),
    or a crawl-warehouse ``.sqlite`` store (served through
    :class:`~repro.warehouse.WarehouseBackend`).
    Any other input raises :class:`TypeError` listing the accepted types.
    """
    if isinstance(source, GraphBackend):
        return source
    if isinstance(source, Graph):
        return InMemoryBackend(source)
    if isinstance(source, str) and source.startswith(("http://", "https://")):
        from .remote import HTTPGraphBackend

        return HTTPGraphBackend(source)
    if isinstance(source, str) and source.startswith("cluster://"):
        from ..cluster import open_cluster

        return open_cluster(source)
    if isinstance(source, (str, Path)):
        from ..storage import open_backend

        return open_backend(source)
    raise TypeError(
        f"cannot build a GraphBackend from {type(source).__name__}; accepted "
        "types: Graph, GraphBackend, an http(s):// service URL, a cluster:// "
        "shard list, or a str / pathlib.Path pointing at a CSR snapshot "
        "directory, a shard directory, a cluster.json manifest, a crawl-dump "
        "file, or a crawl-warehouse .sqlite store"
    )
