"""Simulated restrictive-access API for online social networks.

The package is organised in three explicit layers:

* **backends** (:mod:`repro.api.backend`) — raw neighborhood storage behind a
  two-method :class:`GraphBackend` protocol (``fetch`` / ``fetch_many``);
* **middleware** (:mod:`repro.api.middleware`) — composable policy layers
  (cache, budget, rate limit, shuffle, trace) assembled by
  :func:`repro.api.builder.build_api`;
* **facade** (:mod:`repro.api.session`) — the fluent
  :class:`SamplingSession` used by the CLI, the experiment runner and the
  examples.

The legacy :class:`GraphAPI` constructor remains available as a thin shim
over the same stack.
"""

from .backend import CSRBackend, GraphBackend, InMemoryBackend, RawRecord, as_backend
from .budget import QueryBudget
from .builder import build_api
from .cache import CacheStats, LRUCache, QueryCache, make_cache
from .directed import (
    DirectedGraphStore,
    DirectedToUndirectedAPI,
    mutual_undirected_edges,
    store_from_edges,
)
from .instrumented import InstrumentedAPI
from .interface import GraphAPI, NodeView, SocialNetworkAPI
from .middleware import (
    APILayer,
    BackendAPI,
    BudgetLayer,
    CacheLayer,
    QueryBatchRecord,
    QueryRecord,
    QueryStats,
    QueryTrace,
    RateLimitLayer,
    ShuffleLayer,
    TraceLayer,
    describe_stack,
    iter_layers,
)
from .remote import HTTPGraphBackend, WIRE_FORMAT, WIRE_VERSION, walk_fingerprint
from .remote_async import AsyncHTTPGraphBackend
from .ratelimit import (
    FixedWindowPolicy,
    RateLimitPolicy,
    SimulatedClock,
    TokenBucketPolicy,
    UnlimitedPolicy,
    estimate_crawl_time,
    twitter_policy,
    yelp_policy,
)
from .session import SamplingSession, Session

__all__ = [
    "APILayer",
    "AsyncHTTPGraphBackend",
    "BackendAPI",
    "BudgetLayer",
    "CSRBackend",
    "CacheLayer",
    "CacheStats",
    "DirectedGraphStore",
    "DirectedToUndirectedAPI",
    "FixedWindowPolicy",
    "GraphAPI",
    "GraphBackend",
    "HTTPGraphBackend",
    "InMemoryBackend",
    "InstrumentedAPI",
    "LRUCache",
    "NodeView",
    "QueryBudget",
    "QueryCache",
    "QueryBatchRecord",
    "QueryRecord",
    "QueryStats",
    "QueryTrace",
    "RateLimitLayer",
    "RateLimitPolicy",
    "RawRecord",
    "SamplingSession",
    "Session",
    "ShuffleLayer",
    "SimulatedClock",
    "SocialNetworkAPI",
    "TokenBucketPolicy",
    "TraceLayer",
    "UnlimitedPolicy",
    "WIRE_FORMAT",
    "WIRE_VERSION",
    "as_backend",
    "build_api",
    "describe_stack",
    "estimate_crawl_time",
    "iter_layers",
    "make_cache",
    "mutual_undirected_edges",
    "store_from_edges",
    "twitter_policy",
    "walk_fingerprint",
    "yelp_policy",
]
