"""Simulated restrictive-access API for online social networks."""

from .budget import QueryBudget
from .cache import CacheStats, LRUCache, QueryCache, make_cache
from .directed import (
    DirectedGraphStore,
    DirectedToUndirectedAPI,
    mutual_undirected_edges,
    store_from_edges,
)
from .instrumented import InstrumentedAPI, QueryRecord, QueryTrace
from .interface import GraphAPI, NodeView, SocialNetworkAPI
from .ratelimit import (
    FixedWindowPolicy,
    RateLimitPolicy,
    SimulatedClock,
    TokenBucketPolicy,
    UnlimitedPolicy,
    estimate_crawl_time,
    twitter_policy,
    yelp_policy,
)

__all__ = [
    "CacheStats",
    "DirectedGraphStore",
    "DirectedToUndirectedAPI",
    "FixedWindowPolicy",
    "GraphAPI",
    "InstrumentedAPI",
    "LRUCache",
    "NodeView",
    "QueryBudget",
    "QueryCache",
    "QueryRecord",
    "QueryTrace",
    "RateLimitPolicy",
    "SimulatedClock",
    "SocialNetworkAPI",
    "TokenBucketPolicy",
    "UnlimitedPolicy",
    "estimate_crawl_time",
    "make_cache",
    "mutual_undirected_edges",
    "store_from_edges",
    "twitter_policy",
    "yelp_policy",
]
