"""Casting directed social networks into the undirected access model.

Twitter-style networks expose *directed* neighbor lists (followers and
followees).  Section 2.1 and 6.1 of the paper describe how a random walk over
the undirected "mutual" graph can still be executed against such an API: take
the union (or intersection) of the two lists and, for the mutual-edge rule,
verify the inverse direction before committing to an edge.  This module
implements that adapter, including the extra query cost the verification step
incurs, so experiments can account for it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..exceptions import NodeNotFoundError
from ..types import NodeId
from .budget import QueryBudget
from .interface import NodeView, SocialNetworkAPI


class DirectedGraphStore:
    """Minimal in-memory directed graph used as the backend of the adapter."""

    def __init__(self) -> None:
        self._successors: Dict[NodeId, Set[NodeId]] = {}
        self._predecessors: Dict[NodeId, Set[NodeId]] = {}
        self._attributes: Dict[NodeId, Dict[str, Any]] = {}

    def add_node(self, node: NodeId, **attributes: Any) -> None:
        self._successors.setdefault(node, set())
        self._predecessors.setdefault(node, set())
        self._attributes.setdefault(node, {})
        if attributes:
            self._attributes[node].update(attributes)

    def add_edge(self, source: NodeId, target: NodeId) -> None:
        if source == target:
            raise ValueError("self-loops are not allowed")
        self.add_node(source)
        self.add_node(target)
        self._successors[source].add(target)
        self._predecessors[target].add(source)

    def has_node(self, node: NodeId) -> bool:
        return node in self._successors

    def successors(self, node: NodeId) -> List[NodeId]:
        if node not in self._successors:
            raise NodeNotFoundError(node)
        return list(self._successors[node])

    def predecessors(self, node: NodeId) -> List[NodeId]:
        if node not in self._predecessors:
            raise NodeNotFoundError(node)
        return list(self._predecessors[node])

    def attributes(self, node: NodeId) -> Dict[str, Any]:
        if node not in self._attributes:
            raise NodeNotFoundError(node)
        return dict(self._attributes[node])

    def nodes(self) -> List[NodeId]:
        return list(self._successors)

    def number_of_edges(self) -> int:
        return sum(len(targets) for targets in self._successors.values())


class DirectedToUndirectedAPI(SocialNetworkAPI):
    """Expose a directed store through the undirected access model.

    Args:
        store: The directed graph backend.
        mutual_only: ``True`` keeps only mutual edges (both directions exist),
            the rule used for the paper's experiment datasets; ``False`` keeps
            an edge when either direction exists.
        queries_per_node: Billable API calls needed to fetch one node's full
            neighborhood.  Real directed APIs require separate calls for the
            follower and followee lists, so the default is 2.
        budget: Optional unique-query budget (measured in billable calls).
    """

    def __init__(
        self,
        store: DirectedGraphStore,
        mutual_only: bool = True,
        queries_per_node: int = 2,
        budget: Optional[QueryBudget] = None,
    ) -> None:
        if queries_per_node < 1:
            raise ValueError("queries_per_node must be at least 1")
        self._store = store
        self._mutual_only = mutual_only
        self._queries_per_node = queries_per_node
        self.budget = budget if budget is not None else QueryBudget(None)
        self._cache: Dict[NodeId, NodeView] = {}
        self._unique_queries = 0
        self._total_queries = 0

    def query(self, node: NodeId) -> NodeView:
        self._total_queries += 1
        if node in self._cache:
            return self._cache[node]
        if not self._store.has_node(node):
            raise NodeNotFoundError(node)
        self.budget.spend(self._queries_per_node)
        successors = set(self._store.successors(node))
        predecessors = set(self._store.predecessors(node))
        if self._mutual_only:
            undirected = successors & predecessors
        else:
            undirected = successors | predecessors
        view = NodeView(
            node=node,
            neighbors=tuple(sorted(undirected, key=repr)),
            attributes=self._store.attributes(node),
        )
        self._cache[node] = view
        self._unique_queries += self._queries_per_node
        return view

    @property
    def unique_queries(self) -> int:
        return self._unique_queries

    @property
    def total_queries(self) -> int:
        return self._total_queries

    def reset_counters(self) -> None:
        self._unique_queries = 0
        self._total_queries = 0
        self._cache.clear()
        self.budget.reset()

    def undirected_edge_exists(self, u: NodeId, v: NodeId) -> bool:
        """Check whether the undirected edge {u, v} exists under the cast rule."""
        return v in self.query(u).neighbors


def store_from_edges(
    edges,
    attributes: Optional[Dict[NodeId, Dict[str, Any]]] = None,
) -> DirectedGraphStore:
    """Build a :class:`DirectedGraphStore` from an iterable of directed edges."""
    store = DirectedGraphStore()
    for source, target in edges:
        if source == target:
            continue
        store.add_edge(source, target)
    if attributes:
        for node, attrs in attributes.items():
            store.add_node(node, **attrs)
    return store


def mutual_undirected_edges(store: DirectedGraphStore) -> List[Tuple[NodeId, NodeId]]:
    """Return the undirected mutual-edge set of a directed store."""
    edges: List[Tuple[NodeId, NodeId]] = []
    seen: Set[frozenset] = set()
    for node in store.nodes():
        successors = set(store.successors(node))
        predecessors = set(store.predecessors(node))
        for other in successors & predecessors:
            key = frozenset((node, other))
            if key not in seen:
                seen.add(key)
                edges.append((node, other))
    return edges
