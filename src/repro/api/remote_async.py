"""Asyncio transport for the remote graph backend, behind the sync facade.

:class:`AsyncHTTPGraphBackend` is :class:`~repro.api.remote.HTTPGraphBackend`
with the blocking socket transport swapped for an asyncio one: the connection
is an ``asyncio.open_connection`` stream pair driven on a private event loop
that runs on one daemon thread (``repro-aio-client``), and every exchange is
submitted with ``run_coroutine_threadsafe``.  Everything *above* the
transport — retries, backoff, error mapping, the typed 404/429 translation,
the meta/info/node-id caches, ``remote_walk`` — is inherited unchanged, so
the async client is wire- and walk-bit-identical to the threaded one (the
conformance suite drives both through the same golden matrix).

Why a sync facade at all: the walkers, middleware and schedulers are
synchronous, and the paper's crawls are strictly sequential (each step's
query depends on the previous answer), so an async *API* would buy nothing
for a single client.  What the asyncio transport buys is symmetry with the
asyncio server frontend and a client whose socket handling (timeouts via
``wait_for``, stream limits, half-close semantics) matches the server's —
one wire implementation debugged once.

Timeouts surface as :class:`~repro.api.remote._WireError` (drop the
connection and retry), exactly like a blocking-socket timeout on the
threaded transport.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from typing import Optional, Tuple

from .remote import HTTPGraphBackend, _WireError


class _AsyncLeanConnection:
    """The asyncio twin of :class:`~repro.api.remote._LeanHTTPConnection`.

    Same HTTP/1.1 subset, same :class:`_WireError` semantics, driven through
    ``asyncio`` streams; every await is bounded by the per-request timeout.
    All coroutines run on the owning backend's private event loop.
    """

    _MAX_LINE = 65536

    def __init__(self, scheme: str, host: str, port: Optional[int],
                 timeout: float, host_header: str,
                 extra_headers: str = "") -> None:
        self._scheme = scheme
        self._host = host
        self._port = port if port is not None else (443 if scheme == "https" else 80)
        self._timeout = timeout
        self._host_header = host_header
        self._extra_headers = extra_headers
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reusable = True
        #: Raw ``X-Repro-Span`` value of the last response (trace echo).
        self.span_echo: Optional[str] = None

    async def _connect(self) -> None:
        ssl_context = None
        if self._scheme == "https":
            import ssl

            ssl_context = ssl.create_default_context()
        reader, writer = await self._wait(
            asyncio.open_connection(
                self._host, self._port, limit=self._MAX_LINE + 2, ssl=ssl_context
            ),
            "connect",
        )
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - platform-dependent
                pass
        self._reader, self._writer = reader, writer
        self._reusable = True

    async def _wait(self, awaitable, what: str):
        try:
            return await asyncio.wait_for(awaitable, self._timeout)
        except asyncio.TimeoutError:
            # Same retry class as a blocking-socket timeout: drop + retry.
            raise _WireError(f"timed out during {what}") from None

    @property
    def reusable(self) -> bool:
        return self._reusable and self._writer is not None

    async def aclose(self) -> None:
        writer = self._writer
        self._reader = self._writer = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):  # pragma: no cover
                pass

    async def send_request(self, method: str, path: str, body: Optional[bytes],
                           headers: str = "") -> None:
        if self._writer is None:
            await self._connect()
        head = (f"{method} {path} HTTP/1.1\r\nHost: {self._host_header}\r\n"
                f"{self._extra_headers}{headers}")
        if body is not None:
            head += f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
        self._writer.write(head.encode("ascii") + b"\r\n" + (body or b""))
        await self._wait(self._writer.drain(), "send")

    async def read_response(self) -> Tuple[int, bytes]:
        if self._reader is None:
            raise _WireError("connection is not open")
        self.span_echo = None
        try:
            status_line = await self._wait(self._reader.readline(), "status line")
        except ValueError:
            # The stream limit tripped: same refusal as the threaded client's
            # readline cap, same message (the regression tests pin it).
            raise _WireError("oversized status line") from None
        if not status_line:
            raise _WireError("connection closed before the status line")
        if len(status_line) > self._MAX_LINE:
            raise _WireError("oversized status line")
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
            raise _WireError(f"malformed status line {status_line!r}")
        try:
            status = int(parts[1])
        except ValueError:
            raise _WireError(f"malformed status code in {status_line!r}") from None
        will_close = parts[0] == b"HTTP/1.0"
        content_length: Optional[int] = None
        header_count = 0
        while True:
            try:
                line = await self._wait(self._reader.readline(), "headers")
            except ValueError:
                raise _WireError("oversized response header line") from None
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise _WireError("connection closed inside the response headers")
            if len(line) > self._MAX_LINE:
                raise _WireError("oversized response header line")
            header_count += 1
            if header_count > 100:
                raise _WireError("got more than 100 response headers")
            name, separator, value = line.partition(b":")
            if not separator:
                raise _WireError(f"malformed header line {line!r}")
            name = name.strip().lower()
            if name == b"content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _WireError(f"malformed Content-Length {value!r}") from None
            elif name == b"connection":
                token = value.strip().lower()
                if token == b"close":
                    will_close = True
                elif token == b"keep-alive":
                    will_close = False
            elif name == b"transfer-encoding":
                raise _WireError("unsupported Transfer-Encoding response")
            elif name == b"x-repro-span":
                self.span_echo = value.strip().decode("iso-8859-1")
        if content_length is None:
            if not will_close:
                raise _WireError("keep-alive response without Content-Length")
            body = await self._wait(self._reader.read(-1), "body")
        else:
            try:
                body = await self._wait(
                    self._reader.readexactly(content_length), "body"
                )
            except asyncio.IncompleteReadError as error:
                raise _WireError(
                    f"response body truncated at {len(error.partial)}/"
                    f"{content_length} bytes"
                ) from None
        if will_close:
            self._reusable = False
        return status, body


class AsyncHTTPGraphBackend(HTTPGraphBackend):
    """The remote graph backend over an asyncio transport (sync facade).

    Drop-in for :class:`~repro.api.remote.HTTPGraphBackend` — same
    constructor, same blocking :class:`~repro.api.backend.GraphBackend`
    surface, same typed errors — with the socket work running on a private
    event loop.  ``close()`` stops that loop and joins its thread; the client
    stays usable afterwards (the loop restarts on the next request), matching
    the threaded client's "close the connection, keep the client" contract.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._aio_loop: Optional[asyncio.AbstractEventLoop] = None
        self._aio_thread: Optional[threading.Thread] = None
        self._aio_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Event-loop plumbing
    # ------------------------------------------------------------------
    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._aio_lock:
            if self._aio_loop is None or self._aio_loop.is_closed():
                loop = asyncio.new_event_loop()
                thread = threading.Thread(
                    target=loop.run_forever, name="repro-aio-client", daemon=True
                )
                thread.start()
                self._aio_loop, self._aio_thread = loop, thread
            return self._aio_loop

    def _call(self, coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, self._ensure_loop()).result()

    # ------------------------------------------------------------------
    # Transport overrides (everything above _send is inherited)
    # ------------------------------------------------------------------
    def _connect(self) -> _AsyncLeanConnection:
        return _AsyncLeanConnection(
            self._scheme, self._host, self._port, self._timeout, self._netloc,
            extra_headers=self._extra_headers,
        )

    def _send(self, method: str, path: str, body: Optional[bytes],
              headers: str = ""):
        return self._call(self._asend(method, path, body, headers))

    async def _asend(self, method: str, path: str, body: Optional[bytes],
                     headers: str = ""):
        connection = self._connection
        if connection is None:
            connection = self._connect()
            self._connection = connection
        await connection.send_request(method, path, body, headers)
        status, data = await connection.read_response()
        self._last_span_echo = connection.span_echo
        if not connection.reusable:
            self._connection = None
            await connection.aclose()
        return status, data

    def _drop_connection(self) -> None:
        connection, self._connection = self._connection, None
        if connection is None:
            return
        with self._aio_lock:
            loop = self._aio_loop
        if loop is None or loop.is_closed():
            return
        try:
            asyncio.run_coroutine_threadsafe(connection.aclose(), loop).result(5)
        except Exception:  # noqa: BLE001 - best-effort cleanup
            pass

    def begin_fetch_many(self, nodes):
        """Validate the batch but do not pipeline (no split-exchange here).

        The threaded client pipelines by splitting send and receive on a raw
        socket; the async facade keeps each exchange a single coroutine, so
        ``begin`` just validates and the inherited :meth:`end_fetch_many`
        falls through to a plain :meth:`fetch_many` — same records, same
        errors, one extra nothing.
        """
        order, _body = self._encode_batch(nodes)
        return order, False, None

    def close(self) -> None:
        """Drop the connection and stop the private event loop."""
        self._drop_connection()
        with self._aio_lock:
            loop, thread = self._aio_loop, self._aio_thread
            self._aio_loop = self._aio_thread = None
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=10)
            loop.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"AsyncHTTPGraphBackend(base_url={self.base_url!r}, name={self.name!r})"
