"""Query caches for the simulated social-network API.

The paper defines query cost as the number of *unique* local-neighborhood
queries, "as any duplicate query can be immediately retrieved from local cache
without consuming the query rate limit" (Section 2.3).  The cache classes here
implement that local cache explicitly so the accounting in
:mod:`repro.api.interface` mirrors a real crawler.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Generic, Hashable, Iterator, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for a cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class QueryCache(Generic[K, V]):
    """Unbounded dictionary cache with hit/miss statistics."""

    def __init__(self) -> None:
        self._store: Dict[K, V] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: K) -> bool:
        return key in self._store

    def __iter__(self) -> Iterator[K]:
        return iter(self._store)

    def get(self, key: K, default: Any = None) -> Any:
        """Return the cached value for ``key`` and record a hit or miss."""
        if key in self._store:
            self.stats.hits += 1
            return self._store[key]
        self.stats.misses += 1
        return default

    def peek(self, key: K, default: Any = None) -> Any:
        """Return the cached value without touching statistics or recency."""
        return self._store.get(key, default)

    def put(self, key: K, value: V) -> None:
        """Store ``value`` under ``key``."""
        self._store[key] = value

    def get_or_compute(self, key: K, compute) -> V:
        """Return the cached value or compute, store and return it."""
        sentinel = self.get(key, _MISSING)
        if sentinel is not _MISSING:
            return sentinel  # type: ignore[return-value]
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop all entries and reset statistics."""
        self._store.clear()
        self.stats.reset()


class LRUCache(QueryCache[K, V]):
    """Bounded cache with least-recently-used eviction.

    A crawler with limited memory may not be able to remember every query it
    ever issued; with an LRU cache some re-queries count against the budget
    again.  The experiment harness uses the unbounded cache by default (the
    paper's assumption) but the LRU variant lets users study the memory /
    query-cost trade-off.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        super().__init__()
        self.capacity = capacity
        self._store: "OrderedDict[K, V]" = OrderedDict()

    def get(self, key: K, default: Any = None) -> Any:
        if key in self._store:
            self.stats.hits += 1
            self._store.move_to_end(key)
            return self._store[key]
        self.stats.misses += 1
        return default

    def put(self, key: K, value: V) -> None:
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = value
        if len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.stats.evictions += 1


def make_cache(capacity: Optional[int] = None) -> QueryCache:
    """Return an unbounded cache (``capacity=None``) or an LRU cache."""
    if capacity is None:
        return QueryCache()
    return LRUCache(capacity)
