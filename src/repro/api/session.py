"""High-level fluent facade over the access-layer stack.

:class:`SamplingSession` wires the three layers of :mod:`repro.api` — storage
backends, policy middleware and the walkers of :mod:`repro.walks` — behind a
chainable configuration interface, so a complete budgeted crawl reads as one
sentence::

    from repro import SamplingSession, twitter_policy

    result = (
        SamplingSession(graph)
        .budget(500)
        .rate_limit(twitter_policy())
        .walker("cnrw", seed=1)
        .run(max_steps=None)
    )

The session owns the assembled API stack (lazily built, rebuilt whenever the
configuration changes) and the last walker, exposes query-cost counters and
the optional trace, and offers :meth:`estimate` to turn a walk's samples into
an unbiased aggregate estimate.  :meth:`run_ensemble` runs several
identically-configured walkers against one shared stack, prefetching each
round of current nodes through ``query_many`` so the per-query overhead is
amortised across walkers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .. import obs
from ..exceptions import VectorizationError
from ..graphs.graph import Graph
from ..rng import SeedLike, derive_seed, make_rng
from ..types import NodeId
from .backend import GraphBackend
from .budget import QueryBudget
from .builder import build_api
from .interface import SocialNetworkAPI
from .middleware import QueryTrace
from .ratelimit import RateLimitPolicy, SimulatedClock


def pick_start_node(api: SocialNetworkAPI, rng) -> NodeId:
    """Draw a random node with degree >= 1 through the API.

    Retries (bounded) over ``api.random_node`` using the free metadata peek,
    accepting blindly when the backend serves no metadata.  Shared by the
    session's start picker and the scheduler's restart policy.
    """
    node = api.random_node(seed=rng)
    for _ in range(1024):
        metadata = api.peek_metadata(node)
        if metadata is None or metadata.get("degree", 1) > 0:
            return node
        node = api.random_node(seed=rng)
    return node


class SamplingSession:
    """Fluent builder and driver for budgeted random-walk crawls.

    Every configuration method returns ``self`` so calls chain; the API stack
    is built on first use and invalidated by any later configuration change.
    ``source`` may also be a ``str`` / :class:`~pathlib.Path` naming on-disk
    storage (a CSR snapshot directory, a crawl-dump file or a crawl-warehouse
    ``.sqlite`` store, see :mod:`repro.storage` / :mod:`repro.warehouse`), an
    ``http(s)://`` URL of a graph service (see :mod:`repro.server`), or a
    ``cluster://`` shard list / ``cluster.json`` manifest (see
    :mod:`repro.cluster`), so a session can crawl a graph larger than RAM,
    replay a recorded crawl, query a merged warehouse, or drive a graph
    served on other machines with the same one-liner.
    """

    def __init__(
        self, source: Union[Graph, GraphBackend, str, Path], seed: SeedLike = None
    ) -> None:
        self._source = source
        self._backend_kind: Optional[str] = None
        self._budget: Union[QueryBudget, int, None] = None
        self._rate_limit: Optional[RateLimitPolicy] = None
        self._clock: Optional[SimulatedClock] = None
        self._cache = True
        self._cache_capacity: Optional[int] = None
        self._shuffle = False
        self._seed = seed
        self._trace: Union[bool, QueryTrace] = False
        self._walker_name = "srw"
        self._walker_seed: SeedLike = None
        self._walker_options: Dict[str, object] = {}
        self._api: Optional[SocialNetworkAPI] = None
        self._tracer: Optional[obs.Tracer] = None
        self.last_result = None

    # ------------------------------------------------------------------
    # Fluent configuration
    # ------------------------------------------------------------------
    def backend(self, kind: str) -> "SamplingSession":
        """Choose the storage backend: ``"memory"`` (default) or ``"csr"``."""
        self._backend_kind = kind
        return self._invalidate()

    def budget(self, limit: Union[QueryBudget, int, None]) -> "SamplingSession":
        """Cap the number of unique (billable) queries."""
        self._budget = limit
        return self._invalidate()

    def rate_limit(
        self, policy: RateLimitPolicy, clock: Optional[SimulatedClock] = None
    ) -> "SamplingSession":
        """Throttle billable queries with ``policy`` on a simulated clock."""
        self._rate_limit = policy
        if clock is not None:
            self._clock = clock
        return self._invalidate()

    def cache(self, capacity: Optional[int] = None, enabled: bool = True) -> "SamplingSession":
        """Configure the local cache (unbounded by default; LRU with a capacity)."""
        self._cache = enabled
        self._cache_capacity = capacity
        return self._invalidate()

    def shuffle_neighbors(self, enabled: bool = True) -> "SamplingSession":
        """Randomise the stored neighbor order of fresh queries."""
        self._shuffle = enabled
        return self._invalidate()

    def trace(self, enabled: Union[bool, QueryTrace] = True) -> "SamplingSession":
        """Record every query through an outermost trace layer."""
        self._trace = enabled
        return self._invalidate()

    def walker(self, name: str, seed: SeedLike = None, **options) -> "SamplingSession":
        """Choose the sampler by factory name (``srw``, ``cnrw``, ``gnrw``...)."""
        self._walker_name = name
        self._walker_seed = seed
        self._walker_options = options
        return self

    def telemetry(self, enabled: bool = True) -> "SamplingSession":
        """Turn end-to-end telemetry on for this session's runs.

        Enables the global metrics registry (:func:`repro.obs.metrics`) and
        gives the session a :class:`~repro.obs.Tracer`: every :meth:`run` /
        :meth:`run_ensemble` executes under that tracer, so client requests
        carry ``X-Repro-Trace`` headers and server span echoes fold back into
        one trace tree per run — export it with :meth:`trace_export`.  Does
        not touch the walk rng lineages or the stack's accounting: traced
        runs stay bit-identical to untraced ones.
        """
        if enabled:
            if self._tracer is None:
                self._tracer = obs.Tracer()
            obs.enable_telemetry()
        else:
            self._tracer = None
        return self

    def _invalidate(self) -> "SamplingSession":
        self._api = None
        return self

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    @property
    def api(self) -> SocialNetworkAPI:
        """The assembled middleware stack (built lazily)."""
        if self._api is None:
            self._api = build_api(
                self._source,
                backend=self._backend_kind,
                budget=self._budget,
                rate_limit=self._rate_limit,
                clock=self._clock,
                cache=self._cache,
                cache_capacity=self._cache_capacity,
                shuffle_neighbors=self._shuffle,
                seed=self._seed,
                trace=self._trace,
            )
        return self._api

    def build_walker(self, seed: SeedLike = None):
        """Build a fresh instance of the configured walker against the session API.

        ``run`` builds its own walker; use this for advanced flows that drive
        a walker directly (e.g. several independent repeats sharing one stack,
        each with a different ``seed``).
        """
        from ..walks.factory import make_walker

        return make_walker(
            self._walker_name,
            api=self.api,
            seed=seed if seed is not None else self._walker_seed,
            **self._walker_options,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        start: Optional[NodeId] = None,
        max_steps: Optional[int] = None,
        burn_in: int = 0,
        thinning: int = 1,
        max_samples: Optional[int] = None,
    ):
        """Run one walk and return its :class:`~repro.walks.base.WalkResult`.

        When ``start`` is omitted a uniformly random non-isolated node is
        drawn from the backend (seeded by the session seed, if any).  Each
        call builds a fresh walker from the configured spec, so a seeded run
        is reproducible no matter what ran before it; query counters, caches
        and budgets on the shared stack do accumulate across runs (call
        :meth:`reset` for a fresh crawl).
        """
        walker = self.build_walker()
        if start is None:
            start = self._pick_start()
        with self._traced("session.run", walker=self._walker_name):
            result = walker.run(
                start,
                max_steps=max_steps,
                burn_in=burn_in,
                thinning=thinning,
                max_samples=max_samples,
            )
        self.last_result = result
        return result

    def run_ensemble(
        self,
        num_walks: int,
        steps: Optional[int] = None,
        starts: Optional[Sequence[NodeId]] = None,
        seed: SeedLike = None,
        burn_in: int = 0,
        thinning: int = 1,
        policy=None,
        mode: str = "scalar",
    ) -> List:
        """Run ``num_walks`` walkers in lockstep against the shared stack.

        A thin delegate to :class:`~repro.engine.scheduler.WalkScheduler`:
        each round, the walkers' current nodes are deduplicated into one
        frontier and fetched in a single
        :meth:`~repro.api.interface.SocialNetworkAPI.query_many` batch, off
        which every walker's kernel then advances — no per-walker queries at
        all.  With the default ``burn_in=0, thinning=1`` every visited node
        is emitted as a sample (matching ``run``), so :meth:`estimate` works
        on the results.  Walker ``i`` is seeded with ``derive_seed(seed, i)``
        for reproducibility (``seed`` defaults to the walker seed).

        ``steps=None`` walks until the shared query budget is exhausted
        (requires a budgeted session), like ``run(max_steps=None)``.  Budget
        exhaustion is never an error: the partial results collected so far
        are returned with ``stopped_by_budget=True`` (walkers later in the
        interrupted round may be up to one step behind the others).  An
        optional :class:`~repro.engine.scheduler.SchedulerPolicy` configures
        dead-end handling (raise / stop / restart).

        ``mode="vector"`` opts into the array-native engine
        (:class:`~repro.engine.vector.VectorScheduler`): the whole ensemble
        advances per round in a handful of numpy vector ops over the CSR
        arrays, under an **explicitly separate seed lineage** — vector runs
        are bit-identical to each other under a fixed seed but intentionally
        differ from scalar runs (the conformance reference).  Configurations
        the vector engine cannot serve (non-CSR backends, trace / rate-limit
        / shuffle / bounded-cache layers, kernels without an array rule,
        non-default policies) fall back to this scalar path with a
        :class:`UserWarning`.
        """
        from ..engine.scheduler import WalkScheduler

        if num_walks < 1:
            raise ValueError("num_walks must be at least 1")
        if mode not in ("scalar", "vector"):
            raise ValueError(f"mode must be 'scalar' or 'vector', got {mode!r}")
        base_seed = seed if seed is not None else self._walker_seed
        with self._traced("session.ensemble", walks=num_walks, mode=mode):
            if mode == "vector":
                results = self._run_vector_ensemble(
                    num_walks, steps, starts, base_seed, burn_in, thinning, policy
                )
                if results is not None:
                    self.last_result = results
                    return results
                # Fell back (warning already emitted): continue on the
                # scalar path.
            if isinstance(base_seed, (int, np.integer)):
                walker_seeds = [
                    derive_seed(int(base_seed), index) for index in range(num_walks)
                ]
            else:
                # None (fresh entropy per walker) or a shared generator.
                walker_seeds = [base_seed] * num_walks
            walkers = [
                self.build_walker(seed=walker_seed) for walker_seed in walker_seeds
            ]
            if starts is None:
                start_nodes = [
                    self._pick_start(offset=index) for index in range(num_walks)
                ]
            else:
                start_nodes = list(starts)
                if len(start_nodes) != num_walks:
                    raise ValueError("starts must provide one node per walk")
            scheduler = WalkScheduler(self.api, policy=policy)
            results = scheduler.run(
                walkers, start_nodes, steps=steps, burn_in=burn_in, thinning=thinning
            )
        self.last_result = results
        return results

    def _run_vector_ensemble(
        self, num_walks, steps, starts, seed, burn_in, thinning, policy
    ) -> Optional[List]:
        """Try the array-native engine; ``None`` = fall back (already warned).

        Start nodes are picked exactly like the scalar path (session-seeded),
        so the two modes crawl from the same starts; only the transition
        draws live in the vector lineage.
        """
        import warnings

        from ..engine.scheduler import SchedulerPolicy
        from ..engine.vector import VectorScheduler, make_vector_kernel

        try:
            if policy is not None and policy != SchedulerPolicy():
                raise VectorizationError(
                    "custom SchedulerPolicy (dead-end stop/restart) is not "
                    "vectorisable"
                )
            kernel = make_vector_kernel(self._walker_name, **self._walker_options)
            scheduler = VectorScheduler(self.api)
        except VectorizationError as error:
            warnings.warn(
                f"vector mode unavailable ({error}); falling back to the "
                "scalar scheduler (scalar seed lineage)",
                stacklevel=3,
            )
            return None
        if starts is None:
            start_nodes = [self._pick_start(offset=index) for index in range(num_walks)]
        else:
            start_nodes = list(starts)
            if len(start_nodes) != num_walks:
                raise ValueError("starts must provide one node per walk")
        result = scheduler.run(
            kernel, start_nodes, steps=steps, seed=seed, burn_in=burn_in, thinning=thinning
        )
        return result.to_walk_results()

    def estimate(self, query, result=None, uniform_samples: bool = False):
        """Estimate an aggregate from a walk's samples (defaults to the last run).

        Accepts a single :class:`~repro.walks.base.WalkResult` or a sequence
        of them (e.g. the return value of :meth:`run_ensemble`, whose pooled
        samples are used after an ensemble run).
        """
        from ..estimation.estimators import estimate as estimate_aggregate

        target = result if result is not None else self.last_result
        if target is None:
            raise ValueError("no walk result available; call run() first")
        if isinstance(target, (list, tuple)):
            samples = [sample for walk in target for sample in walk.samples]
        else:
            samples = target.samples
        return estimate_aggregate(samples, query, uniform_samples=uniform_samples)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_snapshot(self, directory, name: Optional[str] = None):
        """Persist the session's backend as a CSR snapshot directory.

        The snapshot reopens memory-mapped through ``SamplingSession(path)``
        (or :func:`repro.storage.load_snapshot`) and reproduces this
        session's walks bit for bit under the same seeds.
        """
        from ..storage import save_snapshot

        return save_snapshot(self.api.backend, directory, name=name)

    def dump_crawl(self, path, name: Optional[str] = None):
        """Dump every neighborhood this session's trace saw to a JSONL file.

        Requires tracing (``.trace()``); the dump replays offline through
        ``SamplingSession(path)`` (or :func:`repro.storage.load_crawl`).
        """
        from ..storage import dump_crawl

        trace = self.query_trace
        if trace is None:
            raise ValueError(
                "dump_crawl requires tracing; enable it with .trace() before "
                "running the crawl to be recorded"
            )
        if len(trace) == 0:
            raise ValueError(
                "the query trace is empty — run the crawl before dumping it"
            )
        return dump_crawl(self.api, path, name=name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _traced(self, name: str, **tags):
        """Run a block under the session tracer with a root span (or not)."""
        from contextlib import ExitStack

        stack = ExitStack()
        if self._tracer is not None:
            stack.enter_context(obs.use_tracer(self._tracer))
            stack.enter_context(self._tracer.span(name, kind="session", **tags))
        return stack

    @property
    def tracer(self) -> Optional[obs.Tracer]:
        """The session's span tracer (``None`` until :meth:`telemetry`)."""
        return self._tracer

    def trace_export(self, path: Union[str, Path, None] = None) -> str:
        """The collected trace as JSONL (one span per line).

        Requires :meth:`telemetry`.  With ``path`` the JSONL is also written
        to disk, ready for ``python -m repro.cli trace <path>``.
        """
        if self._tracer is None:
            raise ValueError(
                "trace_export requires telemetry; enable it with .telemetry() "
                "before the runs to be traced"
            )
        text = self._tracer.export_jsonl()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @property
    def query_trace(self) -> Optional[QueryTrace]:
        """The query trace, when tracing is enabled."""
        return getattr(self.api, "trace", None)

    @property
    def unique_queries(self) -> int:
        return self.api.unique_queries

    @property
    def total_queries(self) -> int:
        return self.api.total_queries

    def reset(self) -> "SamplingSession":
        """Reset counters, caches and policies for a fresh crawl."""
        self.api.reset_counters()
        self.last_result = None
        return self

    def close(self) -> None:
        """Close the session's backend (delegates to ``GraphBackend.close``).

        Remote and sharded backends hold real resources — keep-alive sockets,
        shard dispatch pools — which this releases deterministically; local
        backends close as a no-op.  The session object stays usable (a later
        query reconnects), and sessions are context managers::

            with SamplingSession("cluster/cluster.json") as session:
                session.budget(500).walker("cnrw", seed=1).run()
        """
        if self._api is not None:
            backend = getattr(self._api, "backend", None)
            if backend is not None:
                backend.close()
        elif isinstance(self._source, GraphBackend):
            # Never built a stack: close a caller-provided backend directly
            # (a path / URL source only opens resources when the stack does).
            self._source.close()

    def __enter__(self) -> "SamplingSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _pick_start(self, offset: int = 0) -> NodeId:
        """Draw a uniformly random start node with degree >= 1."""
        if isinstance(self._seed, (int, np.integer)):
            seed = derive_seed(int(self._seed), 977, offset)
        else:
            seed = self._seed
        return pick_start_node(self.api, make_rng(seed))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        from .middleware import describe_stack

        return (
            f"SamplingSession(walker={self._walker_name!r}, "
            f"stack={describe_stack(self.api)!r})"
        )


#: Short alias for fluent one-liners.
Session = SamplingSession
