"""Deprecated home of the query-trace instrumentation.

The tracing wrapper now lives in :mod:`repro.api.middleware` as
:class:`~repro.api.middleware.TraceLayer`, the outermost layer of the
canonical stack built by :func:`repro.api.builder.build_api`.  This module is
kept so existing imports (``from repro.api.instrumented import
InstrumentedAPI, QueryRecord, QueryTrace``) keep working.

:class:`InstrumentedAPI` is a deprecated alias of ``TraceLayer``.  Compared to
the historic implementation, attribute delegation is now safe: looking up a
missing attribute raises a clean :class:`AttributeError` instead of recursing
into ``_inner`` before ``__init__`` has run (the state ``copy.copy`` and
``pickle`` put instances in).
"""

from __future__ import annotations

import warnings

from .interface import SocialNetworkAPI
from .middleware import QueryRecord, QueryTrace, TraceLayer

__all__ = ["InstrumentedAPI", "QueryRecord", "QueryTrace"]


class InstrumentedAPI(TraceLayer):
    """Deprecated alias of :class:`~repro.api.middleware.TraceLayer`."""

    def __init__(self, inner: SocialNetworkAPI, trace: QueryTrace = None) -> None:
        warnings.warn(
            "InstrumentedAPI is deprecated; use repro.api.TraceLayer (or "
            "build_api(..., trace=True)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(inner, trace=trace)
