"""Instrumentation wrappers around any :class:`SocialNetworkAPI`.

The experiment harness needs per-walk query traces (e.g. to emit a sample's
``query_cost`` field, or to audit that two samplers issued identical queries
up to ordering).  Rather than pushing that bookkeeping into every walker,
:class:`InstrumentedAPI` wraps an API and records what flows through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..types import NodeId
from .interface import NodeView, SocialNetworkAPI


@dataclass
class QueryRecord:
    """One query call observed by the instrumentation."""

    node: NodeId
    fresh: bool
    unique_queries_after: int
    total_queries_after: int


@dataclass
class QueryTrace:
    """Accumulated trace of an instrumented crawl."""

    records: List[QueryRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def queried_nodes(self) -> List[NodeId]:
        return [record.node for record in self.records]

    @property
    def fresh_nodes(self) -> List[NodeId]:
        return [record.node for record in self.records if record.fresh]

    def frequency(self) -> Dict[NodeId, int]:
        counts: Dict[NodeId, int] = {}
        for record in self.records:
            counts[record.node] = counts.get(record.node, 0) + 1
        return counts

    def clear(self) -> None:
        self.records.clear()


class InstrumentedAPI(SocialNetworkAPI):
    """Wrap another API, forwarding queries and recording a trace."""

    def __init__(self, inner: SocialNetworkAPI, trace: Optional[QueryTrace] = None) -> None:
        self._inner = inner
        self.trace = trace if trace is not None else QueryTrace()

    def query(self, node: NodeId) -> NodeView:
        before_unique = self._inner.unique_queries
        view = self._inner.query(node)
        after_unique = self._inner.unique_queries
        self.trace.records.append(
            QueryRecord(
                node=node,
                fresh=after_unique > before_unique,
                unique_queries_after=after_unique,
                total_queries_after=self._inner.total_queries,
            )
        )
        return view

    @property
    def unique_queries(self) -> int:
        return self._inner.unique_queries

    @property
    def total_queries(self) -> int:
        return self._inner.total_queries

    def reset_counters(self) -> None:
        self._inner.reset_counters()
        self.trace.clear()

    @property
    def inner(self) -> SocialNetworkAPI:
        return self._inner

    def __getattr__(self, item):
        # Delegate anything else (graph, budget, random_node, ...) to the
        # wrapped API so the wrapper is a drop-in replacement.
        return getattr(self._inner, item)
