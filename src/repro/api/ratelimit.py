"""Simulated query-rate limits.

Real online social networks throttle third-party crawlers aggressively —
Twitter allowed 15 neighborhood calls per 15 minutes and Yelp 25,000 calls per
day at the time of the paper.  The random-walk algorithms never need to know
about these limits (they only minimise unique queries), but a faithful
substrate should let experiments measure *wall-clock crawl time*, so this
module provides a simulated clock plus the two standard throttling policies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from ..exceptions import RateLimitExceededError


class SimulatedClock:
    """A monotonically increasing virtual clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` (non-negative)."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` if it is in the future."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now


class RateLimitPolicy:
    """Interface for rate-limit policies.

    ``acquire`` is called once per billable query.  Policies either return the
    simulated waiting time (possibly zero) or raise
    :class:`RateLimitExceededError` when ``blocking`` is false and the query
    would have to wait.
    """

    def acquire(self, clock: SimulatedClock, blocking: bool = True) -> float:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class UnlimitedPolicy(RateLimitPolicy):
    """No throttling at all (the default for pure algorithmic experiments)."""

    def acquire(self, clock: SimulatedClock, blocking: bool = True) -> float:  # noqa: ARG002
        return 0.0

    def reset(self) -> None:
        return None


@dataclass
class FixedWindowPolicy(RateLimitPolicy):
    """At most ``max_calls`` per ``window_seconds`` rolling window.

    ``FixedWindowPolicy(15, 900)`` reproduces the Twitter limit cited in the
    paper (15 calls per 15 minutes); ``FixedWindowPolicy(25000, 86400)``
    reproduces the Yelp limit.
    """

    max_calls: int
    window_seconds: float
    _timestamps: Deque[float] = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.max_calls < 1:
            raise ValueError("max_calls must be at least 1")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")

    def acquire(self, clock: SimulatedClock, blocking: bool = True) -> float:
        self._expire(clock.now)
        if len(self._timestamps) < self.max_calls:
            self._timestamps.append(clock.now)
            return 0.0
        # The window is full: the next slot opens when the oldest call expires.
        wait_until = self._timestamps[0] + self.window_seconds
        wait = max(0.0, wait_until - clock.now)
        if not blocking:
            raise RateLimitExceededError(retry_after=wait)
        clock.advance(wait)
        self._expire(clock.now)
        self._timestamps.append(clock.now)
        return wait

    def _expire(self, now: float) -> None:
        cutoff = now - self.window_seconds
        while self._timestamps and self._timestamps[0] <= cutoff:
            self._timestamps.popleft()

    def reset(self) -> None:
        self._timestamps.clear()

    @property
    def calls_in_window(self) -> int:
        return len(self._timestamps)


@dataclass
class TokenBucketPolicy(RateLimitPolicy):
    """Token-bucket throttling: ``rate_per_second`` refills up to ``capacity``."""

    rate_per_second: float
    capacity: float
    _tokens: float = field(default=-1.0, repr=False)
    _last_refill: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self._tokens < 0:
            self._tokens = self.capacity

    def acquire(self, clock: SimulatedClock, blocking: bool = True) -> float:
        self._refill(clock.now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        deficit = 1.0 - self._tokens
        wait = deficit / self.rate_per_second
        if not blocking:
            raise RateLimitExceededError(retry_after=wait)
        clock.advance(wait)
        self._refill(clock.now)
        self._tokens = max(0.0, self._tokens - 1.0)
        return wait

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last_refill)
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate_per_second)
        self._last_refill = now

    def reset(self) -> None:
        self._tokens = self.capacity
        self._last_refill = 0.0

    @property
    def available_tokens(self) -> float:
        return self._tokens


def twitter_policy() -> FixedWindowPolicy:
    """Return the Twitter limit cited in the paper: 15 calls per 15 minutes."""
    return FixedWindowPolicy(max_calls=15, window_seconds=15 * 60)


def yelp_policy() -> FixedWindowPolicy:
    """Return the Yelp limit cited in the paper: 25,000 calls per day."""
    return FixedWindowPolicy(max_calls=25_000, window_seconds=24 * 60 * 60)


def estimate_crawl_time(
    unique_queries: int,
    policy: Optional[RateLimitPolicy] = None,
    seconds_per_query: float = 0.0,
) -> float:
    """Return the simulated wall-clock seconds needed for ``unique_queries``.

    Replays the given number of billable queries against a fresh copy of the
    policy on a fresh clock, adding ``seconds_per_query`` of processing time
    per query.  With the Twitter policy this converts a query budget directly
    into crawl days, the practical motivation of the paper.
    """
    if unique_queries < 0:
        raise ValueError("unique_queries must be non-negative")
    policy = policy or UnlimitedPolicy()
    policy.reset()
    clock = SimulatedClock()
    for _ in range(unique_queries):
        policy.acquire(clock, blocking=True)
        if seconds_per_query:
            clock.advance(seconds_per_query)
    return clock.now
