"""The restrictive social-network access interface and its simulator.

Section 2.1 of the paper defines the access model precisely: the only query a
third party can issue takes a user id ``u`` and returns (1) ``N(u)``, the set
of ``u``'s neighbors, and (2) the other attributes of ``u``.  The full graph
topology is never available.  Every sampler in :mod:`repro.walks` is written
against the :class:`SocialNetworkAPI` interface here, so it genuinely cannot
"cheat" by reading the underlying graph.

The concrete machinery lives in three sibling modules: raw storage backends
in :mod:`repro.api.backend`, policy middleware (cache, budget, rate limit,
shuffle, trace) in :mod:`repro.api.middleware`, and the stack assembler
:func:`repro.api.builder.build_api`.  :class:`GraphAPI` here is the legacy
entry point, preserved as a thin shim that builds the canonical stack over an
in-memory graph with its original constructor signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..graphs.graph import Graph
from ..rng import SeedLike, make_rng
from ..types import NodeId
from .budget import QueryBudget
from .cache import QueryCache
from .ratelimit import RateLimitPolicy, SimulatedClock, UnlimitedPolicy


@dataclass(frozen=True)
class NodeView:
    """The response of one neighborhood query: neighbors plus attributes."""

    node: NodeId
    neighbors: Tuple[NodeId, ...]
    attributes: Dict[str, Any]

    @property
    def degree(self) -> int:
        return len(self.neighbors)


class SocialNetworkAPI:
    """Abstract restrictive-access interface (Section 2.1 of the paper).

    Implementations must expose exactly one kind of query: given a node id,
    return that node's neighbor list and attributes.  The query-cost counters
    let callers reason about crawl budgets without knowing how the data is
    actually served.
    """

    def query(self, node: NodeId) -> NodeView:
        """Return the :class:`NodeView` of ``node`` (one API call)."""
        raise NotImplementedError

    def query_many(self, nodes: Sequence[NodeId]) -> List[NodeView]:
        """Return one :class:`NodeView` per node, in order.

        Semantically equivalent to ``[self.query(n) for n in nodes]`` — each
        node is billed under the same rules as a single query — but
        implementations forward the batch down their stack so backends can
        amortise per-query overhead (the multi-walker ensemble path).

        Failure semantics match the sequential loop: when the query budget
        runs out mid-batch — or an unknown node interrupts the degraded
        sequential path the budget layer uses — everything fetched before
        the stopping point is billed and cached, and the error raises at the
        same node the loop would have stopped on.  The one deliberate
        difference: a batch aborted by an *unknown* node while the budget
        still fits bills no unique queries (the atomic fetch delivers
        nothing), while ``total_queries`` still counts the attempted calls.
        """
        return [self.query(node) for node in nodes]

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Convenience wrapper returning only the neighbor list."""
        return list(self.query(node).neighbors)

    def degree(self, node: NodeId) -> int:
        """Convenience wrapper returning only the degree."""
        return self.query(node).degree

    def attributes(self, node: NodeId) -> Dict[str, Any]:
        """Convenience wrapper returning only the attributes."""
        return dict(self.query(node).attributes)

    def peek_metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        """Return the free profile summary of ``node``, or ``None``.

        Real OSN APIs return a profile summary (attributes, friend count) for
        every neighbor listed in a neighborhood response, which is what makes
        attribute- and degree-based GNRW grouping possible without extra
        queries.  Implementations that can serve this inline metadata return a
        ``{"degree": ..., "attributes": ...}`` mapping without billing the
        query budget; the default is ``None`` (no free metadata available), in
        which case grouping strategies fall back to cached views or prefetch.
        """
        return None

    @property
    def unique_queries(self) -> int:
        """Number of distinct nodes queried so far (the paper's query cost)."""
        raise NotImplementedError

    @property
    def total_queries(self) -> int:
        """Total number of query calls, including cache hits."""
        raise NotImplementedError

    def reset_counters(self) -> None:
        """Reset query counters (and caches) for a fresh crawl."""
        raise NotImplementedError


class GraphAPI(SocialNetworkAPI):
    """Simulate the restrictive API over an in-memory graph.

    Since the access-layer redesign this class is a thin shim: the constructor
    assembles the canonical middleware stack (cache -> budget -> rate-limit ->
    shuffle -> in-memory backend) via :func:`repro.api.builder.build_api` and
    forwards every call to it.  Behaviour — including exact query accounting
    and seeded neighbor shuffling — is walk-for-walk identical to the historic
    monolithic implementation; new code should prefer ``build_api`` or
    :class:`~repro.api.session.SamplingSession` directly.

    Args:
        graph: The underlying social graph.
        budget: Optional :class:`QueryBudget` limiting *unique* queries.
        rate_limit: Optional rate-limit policy applied to unique queries.
        clock: Simulated clock used by the rate limiter (a fresh one is
            created when omitted).
        cache_capacity: ``None`` for the paper's unbounded local cache, or an
            integer for an LRU cache (re-queries of evicted nodes are billed
            again).
        shuffle_neighbors: When true, the neighbor list returned by each
            *fresh* query is stored in a random order.  Real APIs give no
            ordering guarantees; the stored order is then fixed for all cache
            hits, mimicking a deterministic pagination order per node.
        seed: Seed for the neighbor shuffling.
    """

    def __init__(
        self,
        graph: Graph,
        budget: Optional[QueryBudget] = None,
        rate_limit: Optional[RateLimitPolicy] = None,
        clock: Optional[SimulatedClock] = None,
        cache_capacity: Optional[int] = None,
        shuffle_neighbors: bool = False,
        seed: SeedLike = None,
    ) -> None:
        from .builder import build_api

        self._graph = graph
        self.budget = budget if budget is not None else QueryBudget(None)
        self.rate_limit = rate_limit or UnlimitedPolicy()
        self.clock = clock or SimulatedClock()
        self._rng = make_rng(seed)
        self._stack = build_api(
            graph,
            budget=self.budget,
            rate_limit=self.rate_limit,
            clock=self.clock,
            cache_capacity=cache_capacity,
            shuffle_neighbors=shuffle_neighbors,
            seed=self._rng,
        )

    # ------------------------------------------------------------------
    # SocialNetworkAPI interface
    # ------------------------------------------------------------------
    def query(self, node: NodeId) -> NodeView:
        return self._stack.query(node)

    def query_many(self, nodes: Sequence[NodeId]) -> List[NodeView]:
        return self._stack.query_many(nodes)

    @property
    def unique_queries(self) -> int:
        return self._stack.unique_queries

    @property
    def total_queries(self) -> int:
        return self._stack.total_queries

    def reset_counters(self) -> None:
        self._stack.reset_counters()

    def peek_metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        return self._stack.peek_metadata(node)

    # ------------------------------------------------------------------
    # Introspection helpers (not part of the restricted interface)
    # ------------------------------------------------------------------
    @property
    def stack(self) -> SocialNetworkAPI:
        """The middleware stack the shim forwards to."""
        return self._stack

    @property
    def graph(self) -> Graph:
        """The underlying graph.

        Exposed for ground-truth computation and tests only; samplers must not
        touch it (and the ones in this library never do).
        """
        return self._graph

    @property
    def cache(self) -> QueryCache:
        return self._stack.cache

    def random_node(self, seed: SeedLike = None) -> NodeId:
        """Return a uniformly random node id to start a walk from.

        Strictly speaking a third party cannot draw uniform nodes (that is the
        whole point of the paper), but every random-walk paper still needs an
        arbitrary starting node; a crawler would use any known account.  Using
        the graph here does not leak information to the samplers because the
        start node only affects the transient, not the stationary analysis.
        """
        return self._stack.random_node(seed=seed)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"GraphAPI(graph={self._graph.name!r}, unique={self.unique_queries}, "
            f"total={self.total_queries})"
        )
