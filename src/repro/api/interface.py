"""The restrictive social-network access interface and its simulator.

Section 2.1 of the paper defines the access model precisely: the only query a
third party can issue takes a user id ``u`` and returns (1) ``N(u)``, the set
of ``u``'s neighbors, and (2) the other attributes of ``u``.  The full graph
topology is never available.  Every sampler in :mod:`repro.walks` is written
against the :class:`SocialNetworkAPI` interface here, so it genuinely cannot
"cheat" by reading the underlying graph.

:class:`GraphAPI` simulates that interface over an in-memory
:class:`~repro.graphs.graph.Graph`, counting unique queries exactly as the
paper's cost model prescribes (duplicate queries are served from a local
cache for free), optionally enforcing a query budget and a rate-limit policy
on a simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..exceptions import NodeNotFoundError
from ..graphs.graph import Graph
from ..rng import SeedLike, make_rng
from ..types import NodeId
from .budget import QueryBudget
from .cache import QueryCache, make_cache
from .ratelimit import RateLimitPolicy, SimulatedClock, UnlimitedPolicy


@dataclass(frozen=True)
class NodeView:
    """The response of one neighborhood query: neighbors plus attributes."""

    node: NodeId
    neighbors: Tuple[NodeId, ...]
    attributes: Dict[str, Any]

    @property
    def degree(self) -> int:
        return len(self.neighbors)


class SocialNetworkAPI:
    """Abstract restrictive-access interface (Section 2.1 of the paper).

    Implementations must expose exactly one kind of query: given a node id,
    return that node's neighbor list and attributes.  The query-cost counters
    let callers reason about crawl budgets without knowing how the data is
    actually served.
    """

    def query(self, node: NodeId) -> NodeView:
        """Return the :class:`NodeView` of ``node`` (one API call)."""
        raise NotImplementedError

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Convenience wrapper returning only the neighbor list."""
        return list(self.query(node).neighbors)

    def degree(self, node: NodeId) -> int:
        """Convenience wrapper returning only the degree."""
        return self.query(node).degree

    def attributes(self, node: NodeId) -> Dict[str, Any]:
        """Convenience wrapper returning only the attributes."""
        return dict(self.query(node).attributes)

    @property
    def unique_queries(self) -> int:
        """Number of distinct nodes queried so far (the paper's query cost)."""
        raise NotImplementedError

    @property
    def total_queries(self) -> int:
        """Total number of query calls, including cache hits."""
        raise NotImplementedError

    def reset_counters(self) -> None:
        """Reset query counters (and caches) for a fresh crawl."""
        raise NotImplementedError


class GraphAPI(SocialNetworkAPI):
    """Simulate the restrictive API over an in-memory graph.

    Args:
        graph: The underlying social graph.
        budget: Optional :class:`QueryBudget` limiting *unique* queries.
        rate_limit: Optional rate-limit policy applied to unique queries.
        clock: Simulated clock used by the rate limiter (a fresh one is
            created when omitted).
        cache_capacity: ``None`` for the paper's unbounded local cache, or an
            integer for an LRU cache (re-queries of evicted nodes are billed
            again).
        shuffle_neighbors: When true, the neighbor list returned by each
            *fresh* query is stored in a random order.  Real APIs give no
            ordering guarantees; the stored order is then fixed for all cache
            hits, mimicking a deterministic pagination order per node.
        seed: Seed for the neighbor shuffling.
    """

    def __init__(
        self,
        graph: Graph,
        budget: Optional[QueryBudget] = None,
        rate_limit: Optional[RateLimitPolicy] = None,
        clock: Optional[SimulatedClock] = None,
        cache_capacity: Optional[int] = None,
        shuffle_neighbors: bool = False,
        seed: SeedLike = None,
    ) -> None:
        self._graph = graph
        self.budget = budget if budget is not None else QueryBudget(None)
        self.rate_limit = rate_limit or UnlimitedPolicy()
        self.clock = clock or SimulatedClock()
        self._cache: QueryCache = make_cache(cache_capacity)
        self._shuffle_neighbors = shuffle_neighbors
        self._rng = make_rng(seed)
        self._unique_queries = 0
        self._total_queries = 0

    # ------------------------------------------------------------------
    # SocialNetworkAPI interface
    # ------------------------------------------------------------------
    def query(self, node: NodeId) -> NodeView:
        self._total_queries += 1
        cached = self._cache.get(node)
        if cached is not None:
            return cached
        if not self._graph.has_node(node):
            raise NodeNotFoundError(node)
        # A fresh query is billable: consume budget and obey the rate limit.
        self.budget.spend(1)
        self.rate_limit.acquire(self.clock, blocking=True)
        neighbors = self._graph.neighbors(node)
        if self._shuffle_neighbors:
            self._rng.shuffle(neighbors)
        view = NodeView(
            node=node,
            neighbors=tuple(neighbors),
            attributes=self._graph.attributes(node),
        )
        self._cache.put(node, view)
        self._unique_queries += 1
        return view

    @property
    def unique_queries(self) -> int:
        return self._unique_queries

    @property
    def total_queries(self) -> int:
        return self._total_queries

    def reset_counters(self) -> None:
        self._unique_queries = 0
        self._total_queries = 0
        self._cache.clear()
        self.budget.reset()
        self.rate_limit.reset()

    def peek_metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        """Return the lightweight profile summary of ``node`` without billing.

        Real OSN APIs return a profile summary (attributes, friend count) for
        every neighbor listed in a neighborhood response, which is what makes
        attribute- and degree-based GNRW grouping possible without extra
        queries.  This method models that inline metadata: it exposes the
        node's attributes and degree but *not* its neighbor list, and does not
        consume the query budget.  Returns ``None`` for unknown nodes.
        """
        if not self._graph.has_node(node):
            return None
        return {
            "degree": self._graph.degree(node),
            "attributes": self._graph.attributes(node),
        }

    # ------------------------------------------------------------------
    # Introspection helpers (not part of the restricted interface)
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying graph.

        Exposed for ground-truth computation and tests only; samplers must not
        touch it (and the ones in this library never do).
        """
        return self._graph

    @property
    def cache(self) -> QueryCache:
        return self._cache

    def random_node(self, seed: SeedLike = None) -> NodeId:
        """Return a uniformly random node id to start a walk from.

        Strictly speaking a third party cannot draw uniform nodes (that is the
        whole point of the paper), but every random-walk paper still needs an
        arbitrary starting node; a crawler would use any known account.  Using
        the graph here does not leak information to the samplers because the
        start node only affects the transient, not the stationary analysis.
        """
        rng = make_rng(seed) if seed is not None else self._rng
        nodes = self._graph.nodes()
        return nodes[int(rng.integers(0, len(nodes)))]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"GraphAPI(graph={self._graph.name!r}, unique={self._unique_queries}, "
            f"total={self._total_queries})"
        )
