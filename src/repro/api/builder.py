"""Assemble a restrictive-access API stack from backend + policy choices.

:func:`build_api` is the one place that knows the canonical layer order::

    trace -> cache -> budget -> rate-limit -> shuffle -> backend

Outer layers see cheaper traffic (cache hits never reach the budget or the
rate limiter), inner layers see only billable fetches.  The legacy
``GraphAPI`` constructor is a thin shim over this builder, and
:class:`~repro.api.session.SamplingSession` drives it for the fluent
high-level interface.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from ..rng import SeedLike, make_rng
from .backend import CSRBackend, GraphBackend, as_backend
from .budget import QueryBudget
from .interface import SocialNetworkAPI
from .middleware import (
    BackendAPI,
    BudgetLayer,
    CacheLayer,
    QueryStats,
    QueryTrace,
    RateLimitLayer,
    ShuffleLayer,
    TraceLayer,
)
from .ratelimit import RateLimitPolicy, SimulatedClock


def build_api(
    source,
    *,
    backend: Optional[str] = None,
    budget: Union[QueryBudget, int, None] = None,
    rate_limit: Optional[RateLimitPolicy] = None,
    clock: Optional[SimulatedClock] = None,
    cache: bool = True,
    cache_capacity: Optional[int] = None,
    shuffle_neighbors: bool = False,
    seed: SeedLike = None,
    trace: Union[bool, QueryTrace] = False,
    layers: Iterable[Callable[[SocialNetworkAPI], SocialNetworkAPI]] = (),
) -> SocialNetworkAPI:
    """Build a middleware stack over a graph or backend.

    Args:
        source: A :class:`~repro.graphs.graph.Graph`, a
            :class:`~repro.api.backend.GraphBackend`, an ``http(s)://`` URL
            of a graph service (driven remotely through
            :class:`~repro.api.remote.HTTPGraphBackend`; see
            :mod:`repro.server`), a ``cluster://`` shard list or
            ``cluster.json`` manifest (driven through
            :class:`~repro.cluster.ShardedBackend`), or a ``str`` /
            :class:`~pathlib.Path` naming on-disk storage — a CSR snapshot
            directory (opened memory-mapped), a crawl-dump file (replayed
            offline) or a crawl-warehouse ``.sqlite`` store (see
            :mod:`repro.storage` and :mod:`repro.warehouse`).
        backend: Optional backend kind for graph sources: ``"memory"`` (the
            default) or ``"csr"`` to compile the graph into the array-based
            :class:`~repro.api.backend.CSRBackend`.
        budget: Unique-query budget — a :class:`QueryBudget`, a plain int
            limit, or ``None`` for no budget layer.
        rate_limit: Optional rate-limit policy (adds a rate-limit layer).
        clock: Simulated clock for the rate limiter (fresh one when omitted).
        cache: Whether to include the local cache layer.  ``True`` is the
            paper's cost model; disable only to study cache-less crawls.
        cache_capacity: ``None`` for the unbounded paper cache, or an integer
            for an LRU cache where evictions are billed again.
        shuffle_neighbors: Randomise the stored neighbor order of each fresh
            query (fixed afterwards, mimicking per-node pagination order).
        seed: Seed (or shared generator) for neighbor shuffling and
            ``random_node``.
        trace: ``True`` (or an existing :class:`QueryTrace`) to record every
            query through an outermost trace layer.
        layers: Extra middleware constructors ``api -> api`` applied between
            the cache and the trace layer, innermost first.

    Returns:
        The outermost :class:`SocialNetworkAPI` of the stack.  Attribute
        access (``budget``, ``rate_limit``, ``cache``, ``graph``,
        ``random_node``, ...) is delegated down the stack, so the result is a
        drop-in replacement for the legacy monolithic ``GraphAPI``.
    """
    resolved: GraphBackend
    if backend is not None and backend not in ("memory", "csr"):
        raise ValueError(f"unknown backend kind {backend!r}; use 'memory' or 'csr'")
    if isinstance(source, (str, Path)):
        # On-disk sources (snapshot directories, crawl dumps) resolve to a
        # concrete backend first, then fall through the conflict check below.
        source = as_backend(source)
    if isinstance(source, GraphBackend):
        # An existing backend cannot be converted; refuse a conflicting ask
        # rather than silently serving from the wrong store.
        if backend is not None:
            from .backend import InMemoryBackend

            expected = CSRBackend if backend == "csr" else InMemoryBackend
            if not isinstance(source, expected):
                raise ValueError(
                    f"backend={backend!r} conflicts with the provided "
                    f"{type(source).__name__}; pass the graph itself or a "
                    f"matching backend"
                )
        resolved = source
    elif backend == "csr":
        resolved = CSRBackend.from_graph(source)
    else:
        resolved = as_backend(source)

    stats = QueryStats()
    rng = make_rng(seed)
    api: SocialNetworkAPI = BackendAPI(resolved, stats=stats, rng=rng)
    if shuffle_neighbors:
        api = ShuffleLayer(api, rng=rng)
    if rate_limit is not None:
        api = RateLimitLayer(api, rate_limit, clock=clock)
    if budget is not None:
        api = BudgetLayer(api, budget)
    if cache:
        api = CacheLayer(api, capacity=cache_capacity, stats=stats)
    for layer in layers:
        api = layer(api)
    if trace:
        api = TraceLayer(api, trace if isinstance(trace, QueryTrace) else None)
    return api
