"""Non-Backtracking Simple Random Walk (NB-SRW).

The order-2 state-of-the-art baseline of Lee, Xu & Eun (SIGMETRICS 2012):
whenever the current node has more than one neighbor, the walk never
immediately returns to the node it just came from.  NB-SRW keeps the SRW
stationary distribution ``pi(v) = deg(v)/2|E|`` while reducing asymptotic
variance, and is the strongest existing competitor the paper compares CNRW and
GNRW against.
"""

from __future__ import annotations

from typing import Optional

from ..api.interface import NodeView
from ..types import NodeId
from .base import RandomWalk


class NonBacktrackingRandomWalk(RandomWalk):
    """Order-2 walk that avoids revisiting the immediately previous node."""

    name = "NB-SRW"

    def _choose_next(self, view: NodeView) -> NodeId:
        neighbors = view.neighbors
        previous: Optional[NodeId] = self.previous
        if previous is not None and len(neighbors) > 1:
            candidates = [node for node in neighbors if node != previous]
        else:
            candidates = list(neighbors)
        return self._uniform_choice(candidates)
