"""Non-Backtracking Simple Random Walk (NB-SRW).

The order-2 state-of-the-art baseline of Lee, Xu & Eun (SIGMETRICS 2012):
whenever the current node has more than one neighbor, the walk never
immediately returns to the node it just came from.  NB-SRW keeps the SRW
stationary distribution ``pi(v) = deg(v)/2|E|`` while reducing asymptotic
variance, and is the strongest existing competitor the paper compares CNRW and
GNRW against.  The rule lives in :class:`~repro.walks.kernels.NBSRWKernel`.
"""

from __future__ import annotations

from .base import RandomWalk
from .kernels import NBSRWKernel


class NonBacktrackingRandomWalk(RandomWalk):
    """Order-2 walk that avoids revisiting the immediately previous node."""

    name = "NB-SRW"

    def __init__(self, api, seed=None) -> None:
        super().__init__(api, seed=seed, kernel=NBSRWKernel())
