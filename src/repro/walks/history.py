"""History bookkeeping for the history-aware walks (CNRW / GNRW).

CNRW maintains, for every traversed directed edge ``u -> v``, the set
``b(u, v)`` of neighbors of ``v`` already chosen as the outgoing step after
``u -> v`` since the last reset (Algorithm 1 in the paper).

GNRW additionally stratifies the neighbors into groups and circulates over the
groups.  Its per-edge state (Section 4.1, steps 1-4) couples two exclusion
sets:

* ``b(u, v)`` — the nodes attempted since the last *full-neighborhood* reset
  (the same set CNRW keeps; it resets only once every neighbor of ``v`` has
  been attempted), and
* ``S(u, v)`` — the groups attempted since the last *group-round* reset (it
  resets once every group has been attempted, or when no un-attempted group
  still has un-attempted members).

Choosing "a group with probability proportional to the number of
not-yet-attempted transitions in each group" (Figure 4 of the paper) over the
groups allowed by ``S(u, v)`` and then a uniform not-yet-attempted member of
that group guarantees that each neighbor is attempted exactly once per
``|N(v)|`` departures along ``u -> v`` — which is what keeps the stationary
distribution identical to SRW (Theorem 4) while making the groups alternate
as evenly as possible (the stratification that lowers variance).

The structures here are intentionally dumb containers with O(1) amortised
updates keyed by the directed edge, plus explicit reset rules and inspection
helpers used by the tests to verify the circulation invariants.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from ..types import Edge, NodeId


class EdgeHistory:
    """The ``b(u, v)`` map of CNRW: visited outgoing neighbors per edge."""

    def __init__(self) -> None:
        self._visited: Dict[Edge, Set[NodeId]] = {}

    def visited(self, source: NodeId, current: NodeId) -> Set[NodeId]:
        """Return (a copy of) the exclusion set ``b(source, current)``."""
        return set(self._visited.get((source, current), set()))

    def remaining(self, source: NodeId, current: NodeId, neighbors) -> List[NodeId]:
        """Return the neighbors of ``current`` not yet attempted after this edge.

        The result preserves the order of ``neighbors`` so the caller's
        uniform choice over it is well-defined and reproducible.
        """
        excluded = self._visited.get((source, current))
        if not excluded:
            return list(neighbors)
        return [node for node in neighbors if node not in excluded]

    def record(self, source: NodeId, current: NodeId, chosen: NodeId, neighbors) -> bool:
        """Record that ``chosen`` was taken after ``source -> current``.

        Implements step 2 of the CNRW description: add the chosen node to
        ``b(u, v)`` and, if the exclusion set now covers every neighbor, reset
        it to empty (a new circulation round starts).  Returns ``True`` when a
        reset happened.

        ``neighbors`` must not contain duplicate entries (API neighbor tuples
        never do); the cheap length guard that keeps this O(1) on the hot
        path relies on it.
        """
        key = (source, current)
        bucket = self._visited.setdefault(key, set())
        bucket.add(chosen)
        # A reset needs every neighbor in the bucket, which is impossible
        # while the bucket is smaller — skip the set work on the common path.
        if len(bucket) < len(neighbors) or not neighbors:
            return False
        if set(neighbors).issubset(bucket):
            self._visited[key] = set()
            return True
        return False

    def reset_edge(self, source: NodeId, current: NodeId) -> None:
        """Explicitly clear the exclusion set of one edge."""
        self._visited.pop((source, current), None)

    def clear(self) -> None:
        """Forget all history (used by ``RandomWalk.reset``)."""
        self._visited.clear()

    @property
    def tracked_edges(self) -> int:
        """Number of directed edges with a (possibly empty) exclusion set."""
        return len(self._visited)

    def state(self) -> Dict[Edge, FrozenSet[NodeId]]:
        """Return an immutable snapshot of the full history (for tests)."""
        return {edge: frozenset(nodes) for edge, nodes in self._visited.items()}


GroupKey = Hashable


class GroupedEdgeHistory:
    """The coupled ``b(u, v)`` / ``S(u, v)`` state of GNRW.

    For each directed edge the history keeps the set of attempted *nodes*
    (reset only when the whole neighborhood has been covered) and the set of
    attempted *groups* within the current group round (reset when every group
    has been attempted or no allowed group has un-attempted members left).
    """

    def __init__(self) -> None:
        self._nodes_attempted: Dict[Edge, Set[NodeId]] = {}
        self._groups_attempted: Dict[Edge, Set[GroupKey]] = {}

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def attempted_nodes(self, source: NodeId, current: NodeId) -> Set[NodeId]:
        """Return (a copy of) ``b(source, current)``."""
        return set(self._nodes_attempted.get((source, current), set()))

    def attempted_groups(self, source: NodeId, current: NodeId) -> Set[GroupKey]:
        """Return (a copy of) ``S(source, current)``."""
        return set(self._groups_attempted.get((source, current), set()))

    def remaining_in_group(
        self, source: NodeId, current: NodeId, members: Sequence[NodeId]
    ) -> List[NodeId]:
        """Return the members of one group not yet attempted along this edge."""
        attempted = self._nodes_attempted.get((source, current))
        if not attempted:
            return list(members)
        return [node for node in members if node not in attempted]

    def candidate_groups(
        self,
        source: NodeId,
        current: NodeId,
        partition: Dict[GroupKey, Sequence[NodeId]],
    ) -> Tuple[List[GroupKey], Dict[GroupKey, List[NodeId]]]:
        """Return the groups eligible for the next departure and their members.

        Eligible groups are those outside ``S(u, v)`` that still contain
        not-yet-attempted members.  If there is no such group the group round
        is (conceptually) over: all groups with remaining members become
        eligible again.  If *no* group has remaining members the neighborhood
        is exhausted and every group is eligible with its full member list
        (the node memory is about to reset).  The returned mapping gives, per
        eligible group, the members that may be chosen.
        """
        key = (source, current)
        attempted_nodes = self._nodes_attempted.get(key, set())
        attempted_groups = self._groups_attempted.get(key, set())

        remaining = {
            group: [node for node in members if node not in attempted_nodes]
            for group, members in partition.items()
        }
        fresh = [
            group
            for group in partition
            if group not in attempted_groups and remaining[group]
        ]
        if fresh:
            return fresh, {group: remaining[group] for group in fresh}
        # Group round over: any group with remaining members is eligible.
        with_remaining = [group for group in partition if remaining[group]]
        if with_remaining:
            return with_remaining, {group: remaining[group] for group in with_remaining}
        # Full neighborhood exhausted: everything resets, all members eligible.
        return list(partition), {group: list(members) for group, members in partition.items()}

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def record(
        self,
        source: NodeId,
        current: NodeId,
        group: GroupKey,
        chosen: NodeId,
        partition: Dict[GroupKey, Sequence[NodeId]],
    ) -> None:
        """Record a departure and apply the reset rules of Section 4.1 step 4.

        ``b(u, v)`` gains the chosen node and resets once it covers every
        neighbor; ``S(u, v)`` gains the chosen group and resets once it covers
        every group or once no un-attempted group has members left to offer.
        """
        key = (source, current)
        nodes = self._nodes_attempted.setdefault(key, set())
        groups = self._groups_attempted.setdefault(key, set())

        nodes.add(chosen)
        groups.add(group)

        # Full-neighborhood reset: needs every member of every group in
        # b(u, v); a cheap size guard (partitions are disjoint, so member
        # counts add up) avoids building the union set on the common path.
        total_members = sum(len(members) for members in partition.values())
        if total_members and len(nodes) >= total_members:
            all_nodes = {node for members in partition.values() for node in members}
            if all_nodes.issubset(nodes):
                self._nodes_attempted[key] = set()
                self._groups_attempted[key] = set()
                return
        if len(groups) >= len(partition) and all(g in groups for g in partition):
            self._groups_attempted[key] = set()
            return
        # Early group-round reset: if every group outside S(u, v) is already
        # fully covered by b(u, v), the next departure could not respect the
        # group circulation; start a new group round now.
        exhausted = True
        for other_group, members in partition.items():
            if other_group in groups:
                continue
            for node in members:
                if node not in nodes:
                    exhausted = False
                    break
            if not exhausted:
                break
        if exhausted:
            self._groups_attempted[key] = set()

    def clear(self) -> None:
        """Forget all history."""
        self._nodes_attempted.clear()
        self._groups_attempted.clear()

    @property
    def tracked_edges(self) -> int:
        return len(self._nodes_attempted)

    def state(self):
        """Return an immutable snapshot (for tests)."""
        nodes = {edge: frozenset(values) for edge, values in self._nodes_attempted.items()}
        groups = {edge: frozenset(values) for edge, values in self._groups_attempted.items()}
        return nodes, groups
