"""Metropolis-Hastings Random Walk (MHRW) targeting the uniform distribution.

MHRW modifies SRW with an accept/reject step so the stationary distribution
becomes uniform over nodes instead of degree-proportional: a move from ``v``
to a uniformly proposed neighbor ``w`` is accepted with probability
``min(1, deg(v) / deg(w))`` and otherwise the walk stays at ``v`` (a
self-transition).

The paper includes MHRW only to confirm prior findings ([7], [11]) that it
mixes much more slowly than SRW-based samplers for aggregate estimation — it
is the worst curve in Figure 6.  Note that evaluating the acceptance ratio
requires the proposed neighbor's degree; we obtain it through the API's free
inline profile metadata when available and through a billed query otherwise,
mirroring how a real MHRW crawler works.
"""

from __future__ import annotations

from ..api.interface import NodeView
from ..types import NodeId
from .base import RandomWalk


class MetropolisHastingsRandomWalk(RandomWalk):
    """Uniform-target Metropolis-Hastings walk (the paper's MHRW baseline)."""

    name = "MHRW"

    def _choose_next(self, view: NodeView) -> NodeId:
        proposal = self._uniform_choice(view.neighbors)
        proposal_degree = self._degree_of(proposal)
        if proposal_degree <= 0:
            # A neighbor always has degree >= 1 (it is connected to us), but a
            # defensive fallback keeps the walk alive on inconsistent data.
            return view.node
        acceptance = min(1.0, view.degree / proposal_degree)
        if self.rng.random() < acceptance:
            return proposal
        return view.node

    def _degree_of(self, node: NodeId) -> int:
        peek = getattr(self.api, "peek_metadata", None)
        if callable(peek):
            metadata = peek(node)
            if metadata is not None:
                return int(metadata.get("degree", 0))
        return self.api.query(node).degree
