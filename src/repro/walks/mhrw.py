"""Metropolis-Hastings Random Walk (MHRW) targeting the uniform distribution.

MHRW modifies SRW with an accept/reject step so the stationary distribution
becomes uniform over nodes instead of degree-proportional: a move from ``v``
to a uniformly proposed neighbor ``w`` is accepted with probability
``min(1, deg(v) / deg(w))`` and otherwise the walk stays at ``v`` (a
self-transition).

The paper includes MHRW only to confirm prior findings ([7], [11]) that it
mixes much more slowly than SRW-based samplers for aggregate estimation — it
is the worst curve in Figure 6.  The acceptance rule (including the free
inline-metadata degree lookup) lives in
:class:`~repro.walks.kernels.MHRWKernel`.
"""

from __future__ import annotations

from ..types import NodeId
from .base import RandomWalk
from .kernels import MHRWKernel


class MetropolisHastingsRandomWalk(RandomWalk):
    """Uniform-target Metropolis-Hastings walk (the paper's MHRW baseline)."""

    name = "MHRW"

    def __init__(self, api, seed=None) -> None:
        super().__init__(api, seed=seed, kernel=MHRWKernel(api))

    def _degree_of(self, node: NodeId) -> int:
        """Degree of ``node`` as the acceptance ratio sees it (kernel logic)."""
        return self.kernel._degree_of(node)
