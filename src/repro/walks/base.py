"""Random-walk base class and walk execution machinery.

Every sampler in the library (SRW, MHRW, NB-SRW, CNRW, GNRW, NB-CNRW) derives
from :class:`RandomWalk` and supplies a :class:`~repro.walks.kernels.TransitionKernel`,
the rule that maps the walk history seen so far to the next node.  Everything
else — talking to the restrictive API, counting query cost, collecting samples
with burn-in and thinning, stopping at a query budget — lives here, so the
algorithms differ *only* in their transition design, exactly as in the paper.

The kernel split also separates the transition rule from the execution
driver: :meth:`RandomWalk.step` queries the API itself (the classic
one-walker driver), while :meth:`RandomWalk.step_with_view` advances off a
view fetched by someone else — the hook the batched
:class:`~repro.engine.scheduler.WalkScheduler` uses to run many walkers in
lockstep without issuing per-walker queries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..api.interface import NodeView, SocialNetworkAPI
from ..exceptions import DeadEndError, InvalidStartNodeError, QueryBudgetExceededError
from ..rng import SeedLike, make_rng
from ..types import NodeId, Sample, Transition
from .kernels import TransitionKernel, WalkState


def budget_is_unlimited(api: SocialNetworkAPI) -> bool:
    """Whether the stack has no finite unique-query budget."""
    budget = getattr(api, "budget", None)
    if budget is None:
        return True
    return bool(getattr(budget, "unlimited", False))


def budget_limit(api: SocialNetworkAPI) -> Optional[int]:
    """The stack's unique-query limit, or ``None``."""
    budget = getattr(api, "budget", None)
    if budget is None:
        return None
    return getattr(budget, "limit", None)


def budget_exhausted(api: SocialNetworkAPI) -> bool:
    """Whether the stack's budget has been fully spent."""
    budget = getattr(api, "budget", None)
    if budget is None:
        return False
    return bool(getattr(budget, "exhausted", False))


def implicit_step_cap(limit: Optional[int]) -> int:
    """Step cap guarding budget-driven walks that can never spend the budget
    (e.g. the budget exceeds the reachable component); shared by both walk
    drivers so they terminate identically."""
    return max(1000, 20 * limit) if limit is not None else 1000


@dataclass
class WalkResult:
    """Everything produced by one walk execution.

    Attributes:
        path: The full node sequence visited by the walk (including the start).
        samples: Samples emitted after burn-in / thinning.
        transitions: The individual transitions of the walk.
        unique_queries: Unique query cost at the end of the walk.
        total_queries: Total query calls (cache hits included).
        stopped_by_budget: Whether the walk ended because the budget ran out
            (as opposed to reaching the requested number of steps).
    """

    path: List[NodeId] = field(default_factory=list)
    samples: List[Sample] = field(default_factory=list)
    transitions: List[Transition] = field(default_factory=list)
    unique_queries: int = 0
    total_queries: int = 0
    stopped_by_budget: bool = False

    @property
    def steps(self) -> int:
        """Number of transitions performed."""
        return len(self.transitions)

    def sample_nodes(self) -> List[NodeId]:
        """Return the node ids of the collected samples."""
        return [sample.node for sample in self.samples]

    def visit_counts(self) -> Dict[NodeId, int]:
        """Return how many times each node appears in the path."""
        return Counter(self.path)


class RandomWalk:
    """Base class for all random-walk samplers.

    Args:
        api: The restrictive-access API the walk queries.
        seed: Seed (or generator) driving the walk's randomness.
        kernel: The transition rule.  Subclasses pass their kernel; external
            subclasses may instead keep overriding :meth:`_choose_next` /
            :meth:`_on_transition` directly, exactly as before the kernel
            split.
    """

    #: Human-readable algorithm name, overridden by subclasses.
    name = "random-walk"

    def __init__(
        self,
        api: SocialNetworkAPI,
        seed: SeedLike = None,
        kernel: Optional[TransitionKernel] = None,
    ) -> None:
        self.api = api
        self.rng = make_rng(seed)
        self.kernel = kernel
        self._state = WalkState()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def state(self) -> WalkState:
        """The walk's position state (shared with external drivers)."""
        return self._state

    @property
    def current(self) -> Optional[NodeId]:
        """The node the walk is currently at (``None`` before ``start``)."""
        return self._state.current

    @property
    def previous(self) -> Optional[NodeId]:
        """The node visited immediately before the current one."""
        return self._state.previous

    @property
    def step_index(self) -> int:
        """Number of transitions performed so far."""
        return self._state.step_index

    def reset(self) -> None:
        """Forget the walk position and any kernel/subclass history."""
        self._state.clear()
        self._reset_history()

    def _reset_history(self) -> None:
        """Clear history structures (kernel-backed by default)."""
        if self.kernel is not None:
            self.kernel.reset()

    # ------------------------------------------------------------------
    # Walking
    # ------------------------------------------------------------------
    def start(self, node: NodeId) -> NodeView:
        """Place the walk at ``node`` and query its neighborhood."""
        view = self.api.query(node)
        return self.start_from_view(node, view)

    def start_from_view(self, node: NodeId, view: NodeView) -> NodeView:
        """Place the walk at ``node`` using an externally fetched view.

        Used by batch drivers that already hold the node's view (e.g. from a
        ``query_many`` prefetch) so placement costs no extra API call.
        """
        if view.degree == 0:
            raise InvalidStartNodeError(
                f"start node {node!r} has no neighbors; walks require degree >= 1"
            )
        self._state.place(node)
        return view

    def step(self) -> Transition:
        """Perform one transition and return it."""
        if self._state.current is None:
            raise InvalidStartNodeError("walk has not been started; call start() first")
        view = self.api.query(self._state.current)
        return self.step_with_view(view)

    def step_with_view(self, view: NodeView) -> Transition:
        """Perform one transition off an externally fetched view of the
        current node (no API query issued by this method itself; the kernel
        may still query for metadata, e.g. GNRW grouping prefetch)."""
        if self._state.current is None:
            raise InvalidStartNodeError("walk has not been started; call start() first")
        if view.degree == 0:
            raise DeadEndError(self._state.current)
        next_node = self._choose_next(view)
        transition = Transition(
            source=self._state.current, target=next_node, step_index=self._state.step_index
        )
        self._on_transition(self._state.current, next_node, view)
        self._state.advance(next_node)
        return transition

    def walk(self, start_node: NodeId, steps: int) -> WalkResult:
        """Run ``steps`` transitions from ``start_node`` (budget permitting)."""
        return self.run(start_node, max_steps=steps)

    def run(
        self,
        start_node: NodeId,
        max_steps: Optional[int] = None,
        burn_in: int = 0,
        thinning: int = 1,
        max_samples: Optional[int] = None,
    ) -> WalkResult:
        """Execute the walk and collect samples.

        Args:
            start_node: Node to start from.
            max_steps: Stop after this many transitions (``None`` = only stop
                on budget exhaustion or ``max_samples``).
            burn_in: Number of initial transitions to discard before emitting
                samples.
            thinning: Emit one sample every ``thinning`` transitions after the
                burn-in (1 = every visited node is a sample).
            max_samples: Stop once this many samples have been collected.

        The walk always stops gracefully when the API's query budget runs out;
        the partial result is returned with ``stopped_by_budget=True``.  When
        ``max_steps`` is omitted, walking stops as soon as the budget is
        exhausted; an implicit step cap (a generous multiple of the budget)
        guards against the pathological case where the budget exceeds the size
        of the reachable component and could therefore never be spent.
        """
        if thinning < 1:
            raise ValueError("thinning must be at least 1")
        if burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        if max_steps is None and max_samples is None and self._budget_is_unlimited():
            raise ValueError(
                "walk would never terminate: provide max_steps, max_samples, "
                "or an API with a finite query budget"
            )
        implicit_cap = None
        if max_steps is None:
            limit = self._budget_limit()
            if limit is not None:
                implicit_cap = implicit_step_cap(limit)
        self.reset()
        result = WalkResult()
        try:
            start_view = self.start(start_node)
        except QueryBudgetExceededError:
            result.stopped_by_budget = True
            self._finalize(result)
            return result
        result.path.append(start_node)
        if burn_in == 0:
            result.samples.append(self._make_sample(start_view, step_index=0))
        while True:
            if max_steps is not None and self._state.step_index >= max_steps:
                break
            if implicit_cap is not None and self._state.step_index >= implicit_cap:
                break
            if max_samples is not None and len(result.samples) >= max_samples:
                break
            if max_steps is None and self._budget_exhausted():
                result.stopped_by_budget = True
                break
            try:
                transition = self.step()
            except QueryBudgetExceededError:
                result.stopped_by_budget = True
                break
            result.transitions.append(transition)
            result.path.append(transition.target)
            step = transition.step_index + 1
            if step >= burn_in and (step - burn_in) % thinning == 0:
                try:
                    view = self.api.query(transition.target)
                except QueryBudgetExceededError:
                    result.stopped_by_budget = True
                    break
                result.samples.append(self._make_sample(view, step_index=step))
        self._finalize(result)
        return result

    def iter_steps(self, start_node: NodeId) -> Iterator[Transition]:
        """Yield transitions indefinitely (until budget exhaustion).

        Useful for streaming consumers; the iterator stops silently when the
        query budget runs out.
        """
        self.reset()
        try:
            self.start(start_node)
        except QueryBudgetExceededError:
            return
        while True:
            try:
                yield self.step()
            except QueryBudgetExceededError:
                return

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _choose_next(self, view: NodeView) -> NodeId:
        """Return the next node given the current node's :class:`NodeView`.

        Delegates to the kernel; subclasses without a kernel override this.
        """
        if self.kernel is None:
            raise NotImplementedError("walker has no kernel and does not override _choose_next")
        return self.kernel.choose(self._state, view, self.rng)

    def _on_transition(self, source: NodeId, target: NodeId, view: NodeView) -> None:
        """Hook called after the next node has been chosen (before moving)."""
        if self.kernel is not None:
            self.kernel.observe(self._state, target, view)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _make_sample(self, view: NodeView, step_index: int) -> Sample:
        return Sample(
            node=view.node,
            degree=view.degree,
            attributes=dict(view.attributes),
            step_index=step_index,
            query_cost=self.api.unique_queries,
        )

    def _finalize(self, result: WalkResult) -> None:
        result.unique_queries = self.api.unique_queries
        result.total_queries = self.api.total_queries

    def _budget_is_unlimited(self) -> bool:
        return budget_is_unlimited(self.api)

    def _budget_limit(self) -> Optional[int]:
        return budget_limit(self.api)

    def _budget_exhausted(self) -> bool:
        return budget_exhausted(self.api)

    def _uniform_choice(self, items: Sequence[NodeId]) -> NodeId:
        if not items:
            raise ValueError("cannot choose from an empty neighbor set")
        return items[int(self.rng.integers(0, len(items)))]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"{type(self).__name__}(current={self._state.current!r}, "
            f"steps={self._state.step_index})"
        )
