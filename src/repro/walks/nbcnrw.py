"""Non-Backtracking CNRW (NB-CNRW) — the Section 5 extension.

Section 5 of the paper points out that the circulated-neighbors idea composes
with any base walk, including NB-SRW: upon visiting ``u -> v``, sample the
next node without replacement from ``N(v) \\ {u}`` (instead of ``N(v)``),
carrying over NB-SRW's refusal to backtrack.  When ``v`` has only one neighbor
(which must be ``u``) the walk backtracks, exactly as NB-SRW does.
"""

from __future__ import annotations

from ..api.interface import NodeView
from ..types import NodeId
from .base import RandomWalk
from .history import EdgeHistory

_NO_SOURCE = object()


class NonBacktrackingCNRW(RandomWalk):
    """CNRW applied on top of the non-backtracking random walk."""

    name = "NB-CNRW"

    def __init__(self, api, seed=None) -> None:
        super().__init__(api, seed=seed)
        self._history = EdgeHistory()

    def _reset_history(self) -> None:
        self._history.clear()

    def _choose_next(self, view: NodeView) -> NodeId:
        previous = self.previous
        neighbors = list(view.neighbors)
        if previous is not None and len(neighbors) > 1:
            allowed = [node for node in neighbors if node != previous]
        else:
            allowed = neighbors
        source = previous if previous is not None else _NO_SOURCE
        candidates = self._history.remaining(source, view.node, allowed)
        if candidates:
            return self._uniform_choice(candidates)
        return self._uniform_choice(allowed)

    def _on_transition(self, source: NodeId, target: NodeId, view: NodeView) -> None:
        previous = self.previous if self.previous is not None else _NO_SOURCE
        neighbors = list(view.neighbors)
        if self.previous is not None and len(neighbors) > 1:
            allowed = [node for node in neighbors if node != self.previous]
        else:
            allowed = neighbors
        self._history.record(previous, source, target, allowed)

    @property
    def history(self) -> EdgeHistory:
        return self._history
