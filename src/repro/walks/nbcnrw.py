"""Non-Backtracking CNRW (NB-CNRW) — the Section 5 extension.

Section 5 of the paper points out that the circulated-neighbors idea composes
with any base walk, including NB-SRW: upon visiting ``u -> v``, sample the
next node without replacement from ``N(v) \\ {u}`` (instead of ``N(v)``),
carrying over NB-SRW's refusal to backtrack.  When ``v`` has only one neighbor
(which must be ``u``) the walk backtracks, exactly as NB-SRW does.  The rule
lives in :class:`~repro.walks.kernels.NBCNRWKernel`.
"""

from __future__ import annotations

from .base import RandomWalk
from .history import EdgeHistory
from .kernels import NBCNRWKernel


class NonBacktrackingCNRW(RandomWalk):
    """CNRW applied on top of the non-backtracking random walk."""

    name = "NB-CNRW"

    def __init__(self, api, seed=None) -> None:
        super().__init__(api, seed=seed, kernel=NBCNRWKernel())

    @property
    def history(self) -> EdgeHistory:
        return self.kernel.history
