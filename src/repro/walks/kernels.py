"""Transition kernels: the per-step rule of each sampler, extracted.

A :class:`TransitionKernel` is the algorithmic heart of one sampler — the map
from ``(walk state, current NodeView, rng)`` to the next node — separated
from the execution driver that feeds it views.  The split exists so that the
same kernel can be advanced by two very different drivers:

* :class:`~repro.walks.base.RandomWalk` — the classic one-walk-at-a-time
  driver, which queries the API step by step (``walk.step()``); and
* :class:`~repro.engine.scheduler.WalkScheduler` — the ensemble driver, which
  advances many kernels in lockstep and prefetches each round's frontier in a
  single batched ``query_many`` call.

Kernels are *stateless-ish*: they hold no walk position (that lives in the
driver's :class:`WalkState`) but do own their history bookkeeping (the
``b(u, v)`` / ``S(u, v)`` structures of CNRW/GNRW), which :meth:`reset`
clears.  Kernels that need free neighbor metadata (MHRW's acceptance ratio,
GNRW's grouping) keep a reference to the API they were built against; they
never advance the walk through it.

Randomness discipline: a kernel draws from the rng it is *passed*, in exactly
the order the pre-refactor walker classes did, so a kernel-driven walk under a
fixed seed reproduces the historic per-step paths bit for bit (the golden
fingerprint tests pin this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..api.interface import NodeView, SocialNetworkAPI
from ..rng import cumulative_pick
from ..types import NodeId

#: Sentinel "source" used when no incoming edge exists yet (the first hop of
#: an edge-keyed circulation) and as the shared key of node-keyed recurrence.
NO_SOURCE = object()


@dataclass
class WalkState:
    """The driver-owned position of one walk: where it is and how it got here.

    Attributes:
        current: The node the walk is at (``None`` before placement).
        previous: The node visited immediately before the current one.
        step_index: Number of transitions performed so far.
    """

    current: Optional[NodeId] = None
    previous: Optional[NodeId] = None
    step_index: int = 0

    def place(self, node: NodeId) -> None:
        """Position the walk at ``node`` as a fresh start."""
        self.current = node
        self.previous = None
        self.step_index = 0

    def advance(self, target: NodeId) -> None:
        """Move the walk to ``target``, shifting the current node to previous."""
        self.previous = self.current
        self.current = target
        self.step_index += 1

    def clear(self) -> None:
        """Forget the position entirely."""
        self.current = None
        self.previous = None
        self.step_index = 0


def uniform_choice(rng: np.random.Generator, items) -> NodeId:
    """Uniformly choose one element (the single rng draw of most kernels)."""
    if not items:
        raise ValueError("cannot choose from an empty neighbor set")
    return items[int(rng.integers(0, len(items)))]


class TransitionKernel:
    """The per-step transition rule of one sampler.

    Subclasses implement :meth:`choose` (pick the next node) and may override
    :meth:`observe` (update history after the choice, before the driver
    advances the state) and :meth:`reset` (clear history between walks).
    """

    #: Human-readable kernel name, overridden by subclasses.
    name = "kernel"

    def choose(self, state: WalkState, view: NodeView, rng: np.random.Generator) -> NodeId:
        """Return the next node given the current node's view."""
        raise NotImplementedError

    def observe(self, state: WalkState, target: NodeId, view: NodeView) -> None:
        """Record that the walk is about to move ``state.current -> target``."""

    def reset(self) -> None:
        """Clear any history the kernel accumulated."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r})"


class SRWKernel(TransitionKernel):
    """Memoryless uniform-neighbor rule (Definition 2, the SRW baseline)."""

    name = "srw"

    def choose(self, state: WalkState, view: NodeView, rng: np.random.Generator) -> NodeId:
        return uniform_choice(rng, view.neighbors)


class WeightedChoiceKernel(TransitionKernel):
    """Neighbor choice proportional to ``weight_fn(view, neighbor)``."""

    name = "weighted"

    def __init__(self, weight_fn) -> None:
        self.weight_fn = weight_fn

    def choose(self, state: WalkState, view: NodeView, rng: np.random.Generator) -> NodeId:
        neighbors = view.neighbors
        weights = [max(0.0, float(self.weight_fn(view, node))) for node in neighbors]
        total = sum(weights)
        if total <= 0:
            return uniform_choice(rng, neighbors)
        return cumulative_pick(neighbors, weights, rng.random() * total)


class MHRWKernel(TransitionKernel):
    """Metropolis-Hastings accept/reject rule targeting the uniform law.

    Evaluating the acceptance ratio needs the proposed neighbor's degree; the
    kernel reads it from the API's free inline profile metadata when available
    and falls back to a billed query otherwise, exactly as a real MHRW crawler
    (and the pre-refactor walker) does.
    """

    name = "mhrw"

    def __init__(self, api: SocialNetworkAPI) -> None:
        self.api = api
        # Resolved once: the stack is immutable after construction, and this
        # getattr sits on the per-proposal hot path.
        peek = getattr(api, "peek_metadata", None)
        self._peek = peek if callable(peek) else None

    def choose(self, state: WalkState, view: NodeView, rng: np.random.Generator) -> NodeId:
        proposal = uniform_choice(rng, view.neighbors)
        proposal_degree = self._degree_of(proposal)
        if proposal_degree <= 0:
            # A neighbor always has degree >= 1 (it is connected to us), but a
            # defensive fallback keeps the walk alive on inconsistent data.
            return view.node
        acceptance = min(1.0, view.degree / proposal_degree)
        if rng.random() < acceptance:
            return proposal
        return view.node

    def _degree_of(self, node: NodeId) -> int:
        if self._peek is not None:
            metadata = self._peek(node)
            if metadata is not None:
                return int(metadata.get("degree", 0))
        return self.api.query(node).degree


class NBSRWKernel(TransitionKernel):
    """Order-2 rule that never immediately returns to the previous node."""

    name = "nbsrw"

    def choose(self, state: WalkState, view: NodeView, rng: np.random.Generator) -> NodeId:
        neighbors = view.neighbors
        previous = state.previous
        if previous is not None and len(neighbors) > 1:
            candidates = [node for node in neighbors if node != previous]
        else:
            candidates = list(neighbors)
        return uniform_choice(rng, candidates)


class CNRWKernel(TransitionKernel):
    """Circulated-neighbors rule (Algorithm 1): without-replacement per edge.

    Args:
        recurrence: ``"edge"`` keys the circulation by the incoming edge
            ``u -> v`` (the paper's CNRW); ``"node"`` keys it by the current
            node only (the Section 3.2 ablation variant).
    """

    name = "cnrw"

    def __init__(self, recurrence: str = "edge") -> None:
        from .history import EdgeHistory

        if recurrence not in ("edge", "node"):
            raise ValueError("recurrence must be 'edge' or 'node'")
        self.recurrence = recurrence
        if recurrence == "node":
            self.name = "cnrw-node"
        self.history = EdgeHistory()

    def reset(self) -> None:
        self.history.clear()

    def choose(self, state: WalkState, view: NodeView, rng: np.random.Generator) -> NodeId:
        source = self._history_key(state)
        candidates = self.history.remaining(source, view.node, view.neighbors)
        if candidates:
            return uniform_choice(rng, candidates)
        # Defensive branch mirroring Algorithm 1: if the exclusion set somehow
        # covers every neighbor (it is normally reset the moment that happens)
        # fall back to a uniform choice over all neighbors.
        return uniform_choice(rng, view.neighbors)

    def observe(self, state: WalkState, target: NodeId, view: NodeView) -> None:
        key = self._history_key(state)
        self.history.record(key, state.current, target, view.neighbors)

    def _history_key(self, state: WalkState):
        """First component of the history key for the pending hop.

        Edge-based recurrence uses the previous node (the incoming edge is
        ``previous -> current``); node-based recurrence collapses all incoming
        edges into one shared key.
        """
        if self.recurrence == "node":
            return NO_SOURCE
        return state.previous if state.previous is not None else NO_SOURCE


class GNRWKernel(TransitionKernel):
    """Group-by-neighbors rule (Section 4): circulate groups, then members.

    Holds the coupled ``b(u, v)`` / ``S(u, v)`` bookkeeping plus the pending
    partition of the current hop, so :meth:`observe` never recomputes groups.
    Needs the API for the grouping strategy's metadata lookups.
    """

    name = "gnrw"

    def __init__(self, api: SocialNetworkAPI, grouping) -> None:
        from .history import GroupedEdgeHistory

        self.api = api
        self.grouping = grouping
        self.name = f"gnrw[{grouping.name}]"
        self.history = GroupedEdgeHistory()
        self._pending_partition: Optional[Dict] = None
        self._pending_group = None

    def reset(self) -> None:
        self.history.clear()
        self._pending_partition = None
        self._pending_group = None

    def choose(self, state: WalkState, view: NodeView, rng: np.random.Generator) -> NodeId:
        source = self._history_key(state)
        partition = self.grouping.partition(view.neighbors, self.api)
        groups, eligible_members = self.history.candidate_groups(source, view.node, partition)
        chosen_group = self._choose_group(groups, eligible_members, rng)
        chosen = uniform_choice(rng, eligible_members[chosen_group])
        self._pending_partition = partition
        self._pending_group = chosen_group
        return chosen

    def observe(self, state: WalkState, target: NodeId, view: NodeView) -> None:
        key = self._history_key(state)
        partition = self._pending_partition
        group = self._pending_group
        if partition is None:
            partition = self.grouping.partition(view.neighbors, self.api)
        if group is None or target not in partition.get(group, ()):
            group = next(
                (candidate for candidate, members in partition.items() if target in members),
                group,
            )
        self.history.record(key, state.current, group, target, partition)
        self._pending_partition = None
        self._pending_group = None

    def _choose_group(self, groups: List, eligible_members: Dict, rng) -> object:
        """Pick a group with probability proportional to its eligible members.

        "Probability proportional to the number of not-yet-attempted
        transitions in each group" (paper Figure 4) is exactly what keeps each
        neighbor's long-run departure frequency at ``1/|N(v)|``: summed over a
        full neighborhood circulation, every member of every group is chosen
        exactly once.
        """
        if len(groups) == 1:
            return groups[0]
        weights = [len(eligible_members[group]) for group in groups]
        total = sum(weights)
        threshold = rng.random() * total
        cumulative = 0
        for group, weight in zip(groups, weights):
            cumulative += weight
            if threshold < cumulative:
                return group
        return groups[-1]

    def _history_key(self, state: WalkState):
        return state.previous if state.previous is not None else NO_SOURCE


class NBCNRWKernel(TransitionKernel):
    """CNRW circulation applied on top of the non-backtracking walk."""

    name = "nbcnrw"

    def __init__(self) -> None:
        from .history import EdgeHistory

        self.history = EdgeHistory()

    def reset(self) -> None:
        self.history.clear()

    @staticmethod
    def _allowed(state: WalkState, view: NodeView):
        """Neighbors minus the backtracking edge (the shared NB filter).

        Returns the view's neighbor tuple itself when nothing is excluded, so
        the unconstrained case costs no copy.
        """
        previous = state.previous
        neighbors = view.neighbors
        if previous is not None and len(neighbors) > 1:
            return [node for node in neighbors if node != previous]
        return neighbors

    def choose(self, state: WalkState, view: NodeView, rng: np.random.Generator) -> NodeId:
        allowed = self._allowed(state, view)
        source = state.previous if state.previous is not None else NO_SOURCE
        candidates = self.history.remaining(source, view.node, allowed)
        if candidates:
            return uniform_choice(rng, candidates)
        return uniform_choice(rng, allowed)

    def observe(self, state: WalkState, target: NodeId, view: NodeView) -> None:
        source = state.previous if state.previous is not None else NO_SOURCE
        self.history.record(source, state.current, target, self._allowed(state, view))
