"""GroupBy Neighbors Random Walk (GNRW) — Section 4 of the paper.

GNRW extends CNRW's circulation from individual neighbors to *groups* of
neighbors.  Given the incoming edge ``u -> v`` and a group-by function
``g(N(v)) = {S_1, ..., S_m}``:

1. among the groups not yet attempted in the current group round (``S(u, v)``)
   that still contain not-yet-attempted members, choose one with probability
   proportional to its number of not-yet-attempted members (Figure 4);
2. inside the chosen group, choose uniformly among its not-yet-attempted
   members (the restriction of ``b(u, v)`` to the group);
3. move there and update the memories: ``b(u, v)`` resets only once every
   neighbor of ``v`` has been attempted, ``S(u, v)`` resets once every group
   has been attempted (or none of the remaining groups has fresh members).

Because ``b(u, v)`` still circulates over the *whole* neighborhood, every
neighbor is attempted exactly once per ``|N(v)|`` departures along the edge —
the same path-block frequency as SRW/CNRW — so the stationary distribution is
unchanged (Theorem 4).  The group round on top merely *reorders* the path
blocks so that groups alternate, which is the stratification that lowers the
asymptotic variance, most visibly when the grouping attribute aligns with the
aggregate being estimated (Figure 9).

The two-level circulation rule lives in
:class:`~repro.walks.kernels.GNRWKernel`.
"""

from __future__ import annotations

from typing import Optional

from .base import RandomWalk
from .grouping import GroupingStrategy, HashGrouping
from .history import GroupedEdgeHistory
from .kernels import GNRWKernel


class GroupByNeighborsRandomWalk(RandomWalk):
    """History-aware walk circulating over neighbor groups, then within groups.

    Args:
        api: Restrictive-access API.
        grouping: A :class:`~repro.walks.grouping.GroupingStrategy`; defaults
            to MD5 hash grouping (the uninformed baseline of Figure 9).
        seed: Randomness seed.
    """

    name = "GNRW"

    def __init__(self, api, grouping: Optional[GroupingStrategy] = None, seed=None) -> None:
        grouping = grouping if grouping is not None else HashGrouping()
        super().__init__(api, seed=seed, kernel=GNRWKernel(api, grouping))
        self.grouping = grouping
        self.name = f"GNRW[{self.grouping.name}]"

    @property
    def history(self) -> GroupedEdgeHistory:
        """The underlying ``b(u,v)`` / ``S(u,v)`` bookkeeping."""
        return self.kernel.history
