"""GroupBy Neighbors Random Walk (GNRW) — Section 4 of the paper.

GNRW extends CNRW's circulation from individual neighbors to *groups* of
neighbors.  Given the incoming edge ``u -> v`` and a group-by function
``g(N(v)) = {S_1, ..., S_m}``:

1. among the groups not yet attempted in the current group round (``S(u, v)``)
   that still contain not-yet-attempted members, choose one with probability
   proportional to its number of not-yet-attempted members (Figure 4);
2. inside the chosen group, choose uniformly among its not-yet-attempted
   members (the restriction of ``b(u, v)`` to the group);
3. move there and update the memories: ``b(u, v)`` resets only once every
   neighbor of ``v`` has been attempted, ``S(u, v)`` resets once every group
   has been attempted (or none of the remaining groups has fresh members).

Because ``b(u, v)`` still circulates over the *whole* neighborhood, every
neighbor is attempted exactly once per ``|N(v)|`` departures along the edge —
the same path-block frequency as SRW/CNRW — so the stationary distribution is
unchanged (Theorem 4).  The group round on top merely *reorders* the path
blocks so that groups alternate, which is the stratification that lowers the
asymptotic variance, most visibly when the grouping attribute aligns with the
aggregate being estimated (Figure 9).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..api.interface import NodeView
from ..types import NodeId
from .base import RandomWalk
from .grouping import GroupingStrategy, HashGrouping
from .history import GroupedEdgeHistory

_NO_SOURCE = object()


class GroupByNeighborsRandomWalk(RandomWalk):
    """History-aware walk circulating over neighbor groups, then within groups.

    Args:
        api: Restrictive-access API.
        grouping: A :class:`~repro.walks.grouping.GroupingStrategy`; defaults
            to MD5 hash grouping (the uninformed baseline of Figure 9).
        seed: Randomness seed.
    """

    name = "GNRW"

    def __init__(self, api, grouping: Optional[GroupingStrategy] = None, seed=None) -> None:
        super().__init__(api, seed=seed)
        self.grouping = grouping if grouping is not None else HashGrouping()
        self.name = f"GNRW[{self.grouping.name}]"
        self._history = GroupedEdgeHistory()
        # Stash the partition/group of the pending transition so
        # _on_transition does not have to recompute or re-derive them.
        self._pending_partition: Optional[Dict] = None
        self._pending_group = None

    # ------------------------------------------------------------------
    # RandomWalk hooks
    # ------------------------------------------------------------------
    def _reset_history(self) -> None:
        self._history.clear()
        self._pending_partition = None
        self._pending_group = None

    def _choose_next(self, view: NodeView) -> NodeId:
        source = self._history_key()
        partition = self.grouping.partition(view.neighbors, self.api)
        groups, eligible_members = self._history.candidate_groups(source, view.node, partition)
        chosen_group = self._choose_group(groups, eligible_members)
        chosen = self._uniform_choice(eligible_members[chosen_group])
        self._pending_partition = partition
        self._pending_group = chosen_group
        return chosen

    def _on_transition(self, source: NodeId, target: NodeId, view: NodeView) -> None:
        key = self._history_key()
        partition = self._pending_partition
        group = self._pending_group
        if partition is None:
            partition = self.grouping.partition(view.neighbors, self.api)
        if group is None or target not in partition.get(group, ()):
            group = next(
                (candidate for candidate, members in partition.items() if target in members),
                group,
            )
        self._history.record(key, source, group, target, partition)
        self._pending_partition = None
        self._pending_group = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _choose_group(self, groups: List, eligible_members: Dict) -> object:
        """Pick a group with probability proportional to its eligible members.

        "Probability proportional to the number of not-yet-attempted
        transitions in each group" (paper Figure 4) is exactly what keeps each
        neighbor's long-run departure frequency at ``1/|N(v)|``: summed over a
        full neighborhood circulation, every member of every group is chosen
        exactly once.
        """
        if len(groups) == 1:
            return groups[0]
        weights = [len(eligible_members[group]) for group in groups]
        total = sum(weights)
        threshold = self.rng.random() * total
        cumulative = 0
        for group, weight in zip(groups, weights):
            cumulative += weight
            if threshold < cumulative:
                return group
        return groups[-1]

    def _history_key(self):
        return self.previous if self.previous is not None else _NO_SOURCE

    @property
    def history(self) -> GroupedEdgeHistory:
        """The underlying ``b(u,v)`` / ``S(u,v)`` bookkeeping."""
        return self._history
