"""Group-by strategies for GNRW.

GNRW stratifies the neighbors of the current node into disjoint groups and
circulates among the groups (Section 4.1 of the paper).  The grouping function
``g(N(v))`` is a free design parameter; the paper evaluates three concrete
strategies on the Yelp graph (Figure 9):

* grouping by a hash of the node id (``GNRW_By_MD5``) — effectively random
  groups, which reduces GNRW to CNRW-like behaviour;
* grouping by degree (``GNRW_By_Degree``);
* grouping by the measure attribute of the target aggregate
  (``GNRW_By_ReviewsCount``).

Each strategy here maps a neighbor (as seen through the restricted API — the
walker passes the neighbor's *attributes only if it already queried them*, so
by default strategies must work with the node id and any locally known data).
To stay faithful to the access model, attribute- and degree-based strategies
look the values up through the API **of already-queried nodes only when
available** and otherwise fall back to a hash group; the ``prefetch`` option
lets users trade extra queries for exact grouping, and is what the paper's
setting corresponds to (profile attributes of listed neighbors are typically
returned inline by real OSN APIs).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from ..api.interface import SocialNetworkAPI
from ..exceptions import InvalidConfigurationError
from ..types import NodeId

GroupKey = Hashable


class GroupingStrategy:
    """Maps each neighbor of the current node to a group key."""

    #: Short name used by reports and the walker factory.
    name = "grouping"

    def group_of(self, node: NodeId, api: SocialNetworkAPI) -> GroupKey:
        """Return the group key of ``node``."""
        raise NotImplementedError

    def partition(self, neighbors: Sequence[NodeId], api: SocialNetworkAPI) -> Dict[GroupKey, List[NodeId]]:
        """Partition ``neighbors`` into groups (order inside groups preserved)."""
        groups: Dict[GroupKey, List[NodeId]] = {}
        for node in neighbors:
            groups.setdefault(self.group_of(node, api), []).append(node)
        return groups

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r})"


class HashGrouping(GroupingStrategy):
    """Group by MD5 hash of the node id modulo ``num_groups``.

    This is the paper's GNRW-By-MD5 baseline: group membership carries no
    information about the node, so GNRW degenerates to (approximately) CNRW.
    """

    def __init__(self, num_groups: int = 3) -> None:
        if num_groups < 1:
            raise InvalidConfigurationError("num_groups must be at least 1")
        self.num_groups = num_groups
        self.name = f"md5-{num_groups}"

    def group_of(self, node: NodeId, api: SocialNetworkAPI) -> GroupKey:  # noqa: ARG002
        digest = hashlib.md5(repr(node).encode("utf-8")).hexdigest()
        return int(digest, 16) % self.num_groups


class AttributeValueGrouping(GroupingStrategy):
    """Group by the exact value of a (categorical) node attribute."""

    def __init__(self, attribute: str, default: GroupKey = "unknown", prefetch: bool = True) -> None:
        self.attribute = attribute
        self.default = default
        self.prefetch = prefetch
        self.name = f"attr-{attribute}"

    def group_of(self, node: NodeId, api: SocialNetworkAPI) -> GroupKey:
        attrs = _known_attributes(node, api, prefetch=self.prefetch)
        if attrs is None:
            return self.default
        return attrs.get(self.attribute, self.default)


class NumericBinGrouping(GroupingStrategy):
    """Group a numeric attribute into fixed-width bins.

    The paper groups Yelp users by ``reviews_count``; since the attribute is
    numeric, neighbors are binned.  ``bin_width`` controls the stratum width;
    values below ``minimum`` all land in bin 0.
    """

    def __init__(
        self,
        attribute: str,
        bin_width: float = 10.0,
        minimum: float = 0.0,
        default_bin: int = -1,
        prefetch: bool = True,
    ) -> None:
        if bin_width <= 0:
            raise InvalidConfigurationError("bin_width must be positive")
        self.attribute = attribute
        self.bin_width = bin_width
        self.minimum = minimum
        self.default_bin = default_bin
        self.prefetch = prefetch
        self.name = f"bin-{attribute}"

    def group_of(self, node: NodeId, api: SocialNetworkAPI) -> GroupKey:
        attrs = _known_attributes(node, api, prefetch=self.prefetch)
        if attrs is None or self.attribute not in attrs:
            return self.default_bin
        try:
            value = float(attrs[self.attribute])
        except (TypeError, ValueError):
            return self.default_bin
        return max(0, int((value - self.minimum) // self.bin_width))


class DegreeGrouping(GroupingStrategy):
    """Group neighbors by (binned) degree — the paper's GNRW-By-Degree.

    Degrees grow over orders of magnitude in social graphs, so the bins are
    logarithmic by default (bin = floor(log2(degree))).
    """

    def __init__(self, logarithmic: bool = True, bin_width: int = 10, prefetch: bool = True) -> None:
        if bin_width < 1:
            raise InvalidConfigurationError("bin_width must be at least 1")
        self.logarithmic = logarithmic
        self.bin_width = bin_width
        self.prefetch = prefetch
        self.name = "degree-log" if logarithmic else f"degree-{bin_width}"

    def group_of(self, node: NodeId, api: SocialNetworkAPI) -> GroupKey:
        degree = _known_degree(node, api, prefetch=self.prefetch)
        if degree is None:
            return -1
        if self.logarithmic:
            return int(degree).bit_length()
        return degree // self.bin_width


class CallableGrouping(GroupingStrategy):
    """Adapt an arbitrary ``node -> group`` function into a strategy."""

    def __init__(self, function: Callable[[NodeId], GroupKey], name: str = "callable") -> None:
        self.function = function
        self.name = name

    def group_of(self, node: NodeId, api: SocialNetworkAPI) -> GroupKey:  # noqa: ARG002
        return self.function(node)


class ExplicitGrouping(GroupingStrategy):
    """Group by an explicit node -> group mapping (missing nodes share a bucket)."""

    def __init__(self, mapping: Dict[NodeId, GroupKey], default: GroupKey = "other") -> None:
        self.mapping = dict(mapping)
        self.default = default
        self.name = "explicit"

    def group_of(self, node: NodeId, api: SocialNetworkAPI) -> GroupKey:  # noqa: ARG002
        return self.mapping.get(node, self.default)


def _known_attributes(node: NodeId, api: SocialNetworkAPI, prefetch: bool) -> Optional[dict]:
    """Return the node's attributes without spending billable queries.

    Resolution order: the API's free inline profile metadata (how real OSN
    responses expose neighbor profiles), then the local query cache, then — if
    ``prefetch`` is true — a full billed query as a last resort.
    """
    peek = getattr(api, "peek_metadata", None)
    if callable(peek):
        metadata = peek(node)
        if metadata is not None:
            return dict(metadata.get("attributes", {}))
    cache = getattr(api, "cache", None)
    if cache is not None:
        view = cache.peek(node)
        if view is not None:
            return dict(view.attributes)
    if prefetch:
        return dict(api.query(node).attributes)
    return None


def _known_degree(node: NodeId, api: SocialNetworkAPI, prefetch: bool) -> Optional[int]:
    peek = getattr(api, "peek_metadata", None)
    if callable(peek):
        metadata = peek(node)
        if metadata is not None:
            return int(metadata.get("degree", 0))
    cache = getattr(api, "cache", None)
    if cache is not None:
        view = cache.peek(node)
        if view is not None:
            return view.degree
    if prefetch:
        return api.query(node).degree
    return None


_STRATEGY_BUILDERS: Dict[str, Callable[..., GroupingStrategy]] = {
    "md5": HashGrouping,
    "hash": HashGrouping,
    "degree": DegreeGrouping,
    "attribute": AttributeValueGrouping,
    "numeric": NumericBinGrouping,
}


def make_grouping(kind: str, **kwargs) -> GroupingStrategy:
    """Build a grouping strategy by short name.

    Examples:
        >>> make_grouping("md5", num_groups=4).name
        'md5-4'
        >>> make_grouping("numeric", attribute="reviews_count").name
        'bin-reviews_count'
    """
    if kind not in _STRATEGY_BUILDERS:
        raise InvalidConfigurationError(
            f"unknown grouping {kind!r}; available: {', '.join(sorted(_STRATEGY_BUILDERS))}"
        )
    return _STRATEGY_BUILDERS[kind](**kwargs)
