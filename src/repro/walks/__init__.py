"""Random-walk samplers: baselines and the paper's history-aware algorithms."""

from .base import RandomWalk, WalkResult
from .cnrw import CirculatedNeighborsRandomWalk
from .factory import available_walkers, make_walker, register_walker
from .gnrw import GroupByNeighborsRandomWalk
from .grouping import (
    AttributeValueGrouping,
    CallableGrouping,
    DegreeGrouping,
    ExplicitGrouping,
    GroupingStrategy,
    HashGrouping,
    NumericBinGrouping,
    make_grouping,
)
from .history import EdgeHistory, GroupedEdgeHistory
from .kernels import (
    CNRWKernel,
    GNRWKernel,
    MHRWKernel,
    NBCNRWKernel,
    NBSRWKernel,
    SRWKernel,
    TransitionKernel,
    WalkState,
    WeightedChoiceKernel,
)
from .mhrw import MetropolisHastingsRandomWalk
from .nbcnrw import NonBacktrackingCNRW
from .nbsrw import NonBacktrackingRandomWalk
from .srw import SimpleRandomWalk, WeightedRandomWalk

# Short aliases matching the paper's acronyms.
SRW = SimpleRandomWalk
MHRW = MetropolisHastingsRandomWalk
NBSRW = NonBacktrackingRandomWalk
CNRW = CirculatedNeighborsRandomWalk
GNRW = GroupByNeighborsRandomWalk
NBCNRW = NonBacktrackingCNRW

__all__ = [
    "AttributeValueGrouping",
    "CNRW",
    "CNRWKernel",
    "CallableGrouping",
    "CirculatedNeighborsRandomWalk",
    "DegreeGrouping",
    "EdgeHistory",
    "GNRWKernel",
    "ExplicitGrouping",
    "GNRW",
    "GroupByNeighborsRandomWalk",
    "GroupedEdgeHistory",
    "GroupingStrategy",
    "HashGrouping",
    "MHRW",
    "MHRWKernel",
    "MetropolisHastingsRandomWalk",
    "NBCNRW",
    "NBCNRWKernel",
    "NBSRW",
    "NBSRWKernel",
    "NonBacktrackingCNRW",
    "NonBacktrackingRandomWalk",
    "NumericBinGrouping",
    "RandomWalk",
    "SRW",
    "SRWKernel",
    "SimpleRandomWalk",
    "TransitionKernel",
    "WalkResult",
    "WalkState",
    "WeightedChoiceKernel",
    "WeightedRandomWalk",
    "available_walkers",
    "make_grouping",
    "make_walker",
    "register_walker",
]
