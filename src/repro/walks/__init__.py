"""Random-walk samplers: baselines and the paper's history-aware algorithms."""

from .base import RandomWalk, WalkResult
from .cnrw import CirculatedNeighborsRandomWalk
from .factory import available_walkers, make_walker, register_walker
from .gnrw import GroupByNeighborsRandomWalk
from .grouping import (
    AttributeValueGrouping,
    CallableGrouping,
    DegreeGrouping,
    ExplicitGrouping,
    GroupingStrategy,
    HashGrouping,
    NumericBinGrouping,
    make_grouping,
)
from .history import EdgeHistory, GroupedEdgeHistory
from .mhrw import MetropolisHastingsRandomWalk
from .nbcnrw import NonBacktrackingCNRW
from .nbsrw import NonBacktrackingRandomWalk
from .srw import SimpleRandomWalk, WeightedRandomWalk

# Short aliases matching the paper's acronyms.
SRW = SimpleRandomWalk
MHRW = MetropolisHastingsRandomWalk
NBSRW = NonBacktrackingRandomWalk
CNRW = CirculatedNeighborsRandomWalk
GNRW = GroupByNeighborsRandomWalk
NBCNRW = NonBacktrackingCNRW

__all__ = [
    "AttributeValueGrouping",
    "CNRW",
    "CallableGrouping",
    "CirculatedNeighborsRandomWalk",
    "DegreeGrouping",
    "EdgeHistory",
    "ExplicitGrouping",
    "GNRW",
    "GroupByNeighborsRandomWalk",
    "GroupedEdgeHistory",
    "GroupingStrategy",
    "HashGrouping",
    "MHRW",
    "MetropolisHastingsRandomWalk",
    "NBCNRW",
    "NBSRW",
    "NonBacktrackingCNRW",
    "NonBacktrackingRandomWalk",
    "NumericBinGrouping",
    "RandomWalk",
    "SRW",
    "SimpleRandomWalk",
    "WalkResult",
    "WeightedRandomWalk",
    "available_walkers",
    "make_grouping",
    "make_walker",
    "register_walker",
]
