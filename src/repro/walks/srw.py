"""Simple Random Walk (SRW) — the memoryless order-1 baseline.

Definition 2 of the paper: at node ``v`` the next node is chosen uniformly at
random from ``N(v)``.  Its stationary distribution is
``pi(v) = deg(v) / 2|E|`` on a connected non-bipartite graph.
"""

from __future__ import annotations

from ..api.interface import NodeView
from ..types import NodeId
from .base import RandomWalk


class SimpleRandomWalk(RandomWalk):
    """Memoryless uniform-neighbor random walk (the paper's SRW baseline)."""

    name = "SRW"

    def _choose_next(self, view: NodeView) -> NodeId:
        return self._uniform_choice(view.neighbors)


class WeightedRandomWalk(RandomWalk):
    """Random walk with transition probability proportional to an edge weight.

    Not evaluated in the paper, but several of the sampling designs the paper
    aims to be a drop-in replacement for (e.g. stratified weighted walks) use
    non-uniform neighbor selection.  The weight of moving to neighbor ``w`` is
    ``weight_fn(current_view, w)``; uniform weights reduce to SRW.
    """

    name = "WRW"

    def __init__(self, api, weight_fn, seed=None) -> None:
        super().__init__(api, seed=seed)
        self._weight_fn = weight_fn

    def _choose_next(self, view: NodeView) -> NodeId:
        neighbors = view.neighbors
        weights = [max(0.0, float(self._weight_fn(view, node))) for node in neighbors]
        total = sum(weights)
        if total <= 0:
            return self._uniform_choice(neighbors)
        threshold = self.rng.random() * total
        cumulative = 0.0
        for node, weight in zip(neighbors, weights):
            cumulative += weight
            if threshold < cumulative:
                return node
        return neighbors[-1]
