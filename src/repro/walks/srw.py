"""Simple Random Walk (SRW) — the memoryless order-1 baseline.

Definition 2 of the paper: at node ``v`` the next node is chosen uniformly at
random from ``N(v)``.  Its stationary distribution is
``pi(v) = deg(v) / 2|E|`` on a connected non-bipartite graph.

The transition rule itself lives in :class:`~repro.walks.kernels.SRWKernel`;
this class binds it to the classic one-walker driver.
"""

from __future__ import annotations

from .base import RandomWalk
from .kernels import SRWKernel, WeightedChoiceKernel


class SimpleRandomWalk(RandomWalk):
    """Memoryless uniform-neighbor random walk (the paper's SRW baseline)."""

    name = "SRW"

    def __init__(self, api, seed=None) -> None:
        super().__init__(api, seed=seed, kernel=SRWKernel())


class WeightedRandomWalk(RandomWalk):
    """Random walk with transition probability proportional to an edge weight.

    Not evaluated in the paper, but several of the sampling designs the paper
    aims to be a drop-in replacement for (e.g. stratified weighted walks) use
    non-uniform neighbor selection.  The weight of moving to neighbor ``w`` is
    ``weight_fn(current_view, w)``; uniform weights reduce to SRW.
    """

    name = "WRW"

    def __init__(self, api, weight_fn, seed=None) -> None:
        super().__init__(api, seed=seed, kernel=WeightedChoiceKernel(weight_fn))
        self._weight_fn = weight_fn
