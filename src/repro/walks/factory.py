"""Name-based construction of walkers.

The experiment harness and the benchmark scripts refer to samplers by short
string names (``"srw"``, ``"cnrw"``, ``"gnrw"``...), matching the labels used
in the paper's figures.  This registry maps those names to constructors so a
figure definition is just a list of names plus per-walker options.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..api.interface import SocialNetworkAPI
from ..exceptions import InvalidConfigurationError
from ..rng import SeedLike
from .base import RandomWalk
from .cnrw import CirculatedNeighborsRandomWalk
from .gnrw import GroupByNeighborsRandomWalk
from .grouping import (
    DegreeGrouping,
    GroupingStrategy,
    HashGrouping,
    NumericBinGrouping,
)
from .mhrw import MetropolisHastingsRandomWalk
from .nbcnrw import NonBacktrackingCNRW
from .nbsrw import NonBacktrackingRandomWalk
from .srw import SimpleRandomWalk

WalkerBuilder = Callable[..., RandomWalk]

_WALKERS: Dict[str, WalkerBuilder] = {}


def register_walker(name: str) -> Callable[[WalkerBuilder], WalkerBuilder]:
    """Register a builder under a (lower-case) name."""

    def decorator(builder: WalkerBuilder) -> WalkerBuilder:
        _WALKERS[name.lower()] = builder
        return builder

    return decorator


def available_walkers() -> List[str]:
    """Return the sorted names of every registered walker."""
    return sorted(_WALKERS)


def make_walker(
    name: str,
    api: SocialNetworkAPI,
    seed: SeedLike = None,
    grouping: Optional[GroupingStrategy] = None,
    group_attribute: Optional[str] = None,
    **kwargs,
) -> RandomWalk:
    """Build a walker by name.

    Args:
        name: One of :func:`available_walkers` (case-insensitive).  The GNRW
            variants of Figure 9 are available as ``gnrw_by_md5``,
            ``gnrw_by_degree`` and ``gnrw_by_attribute``.
        api: The restrictive API the walker will query.
        seed: Randomness seed.
        grouping: Explicit grouping strategy (GNRW only); overrides the
            name-derived default.
        group_attribute: Attribute name for ``gnrw_by_attribute``.
        kwargs: Extra keyword arguments passed to the walker constructor.
    """
    key = name.lower()
    if key not in _WALKERS:
        raise InvalidConfigurationError(
            f"unknown walker {name!r}; available: {', '.join(available_walkers())}"
        )
    return _WALKERS[key](
        api=api, seed=seed, grouping=grouping, group_attribute=group_attribute, **kwargs
    )


@register_walker("srw")
def _build_srw(api, seed=None, **_) -> RandomWalk:
    return SimpleRandomWalk(api, seed=seed)


@register_walker("mhrw")
def _build_mhrw(api, seed=None, **_) -> RandomWalk:
    return MetropolisHastingsRandomWalk(api, seed=seed)


@register_walker("nbsrw")
def _build_nbsrw(api, seed=None, **_) -> RandomWalk:
    return NonBacktrackingRandomWalk(api, seed=seed)


@register_walker("nb-srw")
def _build_nbsrw_alias(api, seed=None, **_) -> RandomWalk:
    return NonBacktrackingRandomWalk(api, seed=seed)


@register_walker("cnrw")
def _build_cnrw(api, seed=None, recurrence: str = "edge", **_) -> RandomWalk:
    return CirculatedNeighborsRandomWalk(api, recurrence=recurrence, seed=seed)


@register_walker("cnrw_node")
def _build_cnrw_node(api, seed=None, **_) -> RandomWalk:
    return CirculatedNeighborsRandomWalk(api, recurrence="node", seed=seed)


@register_walker("nbcnrw")
def _build_nbcnrw(api, seed=None, **_) -> RandomWalk:
    return NonBacktrackingCNRW(api, seed=seed)


@register_walker("gnrw")
def _build_gnrw(api, seed=None, grouping=None, group_attribute=None, **_) -> RandomWalk:
    if grouping is None:
        if group_attribute is not None:
            grouping = NumericBinGrouping(attribute=group_attribute)
        else:
            grouping = HashGrouping()
    return GroupByNeighborsRandomWalk(api, grouping=grouping, seed=seed)


@register_walker("gnrw_by_md5")
def _build_gnrw_md5(api, seed=None, num_groups: int = 3, **_) -> RandomWalk:
    return GroupByNeighborsRandomWalk(api, grouping=HashGrouping(num_groups), seed=seed)


@register_walker("gnrw_by_degree")
def _build_gnrw_degree(api, seed=None, **_) -> RandomWalk:
    return GroupByNeighborsRandomWalk(api, grouping=DegreeGrouping(), seed=seed)


@register_walker("gnrw_by_attribute")
def _build_gnrw_attribute(api, seed=None, group_attribute: Optional[str] = None, bin_width: float = 10.0, **_) -> RandomWalk:
    if group_attribute is None:
        raise InvalidConfigurationError("gnrw_by_attribute requires group_attribute")
    grouping = NumericBinGrouping(attribute=group_attribute, bin_width=bin_width)
    return GroupByNeighborsRandomWalk(api, grouping=grouping, seed=seed)
