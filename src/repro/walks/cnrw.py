"""Circulated Neighbors Random Walk (CNRW) — Section 3 of the paper.

CNRW keeps the SRW transition rule except that, per incoming directed edge
``u -> v``, the outgoing neighbor is drawn **without replacement** from
``N(v)``: once ``u -> v -> w`` has happened, ``w`` is excluded from subsequent
choices after ``u -> v`` until every neighbor of ``v`` has been attempted, at
which point the exclusion set resets (Algorithm 1).

Theorem 1 shows the stationary distribution is unchanged
(``pi(v) = deg(v)/2|E|``); Theorem 2 shows the asymptotic variance is never
larger than SRW's.

The paper also discusses (Section 3.2) a *node-based* recurrence variant where
the circulation is keyed by the current node only, ignoring the incoming edge;
it has shorter path blocks and the authors argue (and verified experimentally)
that the edge-based design is superior.  Both variants are implemented by
:class:`~repro.walks.kernels.CNRWKernel` so the ablation benchmark can
reproduce that comparison.
"""

from __future__ import annotations

from ..exceptions import InvalidConfigurationError
from .base import RandomWalk
from .history import EdgeHistory
from .kernels import CNRWKernel


class CirculatedNeighborsRandomWalk(RandomWalk):
    """History-aware walk sampling neighbors without replacement per edge.

    Args:
        api: Restrictive-access API.
        recurrence: ``"edge"`` (the paper's CNRW, default) keys the
            circulation state by the incoming edge ``u -> v``; ``"node"`` keys
            it by the current node only (the ablation variant of Section 3.2).
        seed: Randomness seed.
    """

    name = "CNRW"

    def __init__(self, api, recurrence: str = "edge", seed=None) -> None:
        if recurrence not in ("edge", "node"):
            raise InvalidConfigurationError("recurrence must be 'edge' or 'node'")
        super().__init__(api, seed=seed, kernel=CNRWKernel(recurrence=recurrence))
        self.recurrence = recurrence
        if recurrence == "node":
            self.name = "CNRW-node"

    @property
    def history(self) -> EdgeHistory:
        """The underlying ``b(u, v)`` bookkeeping (exposed for tests/analysis)."""
        return self.kernel.history
