"""Circulated Neighbors Random Walk (CNRW) — Section 3 of the paper.

CNRW keeps the SRW transition rule except that, per incoming directed edge
``u -> v``, the outgoing neighbor is drawn **without replacement** from
``N(v)``: once ``u -> v -> w`` has happened, ``w`` is excluded from subsequent
choices after ``u -> v`` until every neighbor of ``v`` has been attempted, at
which point the exclusion set resets (Algorithm 1).

Theorem 1 shows the stationary distribution is unchanged
(``pi(v) = deg(v)/2|E|``); Theorem 2 shows the asymptotic variance is never
larger than SRW's.

The paper also discusses (Section 3.2) a *node-based* recurrence variant where
the circulation is keyed by the current node only, ignoring the incoming edge;
it has shorter path blocks and the authors argue (and verified experimentally)
that the edge-based design is superior.  Both variants are implemented here so
the ablation benchmark can reproduce that comparison.
"""

from __future__ import annotations

from ..api.interface import NodeView
from ..exceptions import InvalidConfigurationError
from ..types import NodeId
from .base import RandomWalk
from .history import EdgeHistory

#: Sentinel used as the "source" for node-based recurrence and for the very
#: first transition of an edge-based walk (no incoming edge exists yet).
_NO_SOURCE = object()


class CirculatedNeighborsRandomWalk(RandomWalk):
    """History-aware walk sampling neighbors without replacement per edge.

    Args:
        api: Restrictive-access API.
        recurrence: ``"edge"`` (the paper's CNRW, default) keys the
            circulation state by the incoming edge ``u -> v``; ``"node"`` keys
            it by the current node only (the ablation variant of Section 3.2).
        seed: Randomness seed.
    """

    name = "CNRW"

    def __init__(self, api, recurrence: str = "edge", seed=None) -> None:
        super().__init__(api, seed=seed)
        if recurrence not in ("edge", "node"):
            raise InvalidConfigurationError("recurrence must be 'edge' or 'node'")
        self.recurrence = recurrence
        if recurrence == "node":
            self.name = "CNRW-node"
        self._history = EdgeHistory()

    # ------------------------------------------------------------------
    # RandomWalk hooks
    # ------------------------------------------------------------------
    def _reset_history(self) -> None:
        self._history.clear()

    def _choose_next(self, view: NodeView) -> NodeId:
        source = self._history_key()
        candidates = self._history.remaining(source, view.node, view.neighbors)
        if candidates:
            return self._uniform_choice(candidates)
        # Defensive branch mirroring Algorithm 1: if the exclusion set somehow
        # covers every neighbor (it is normally reset the moment that happens)
        # fall back to a uniform choice over all neighbors.
        return self._uniform_choice(view.neighbors)

    def _on_transition(self, source: NodeId, target: NodeId, view: NodeView) -> None:
        key = self._history_key()
        self._history.record(key, source, target, view.neighbors)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _history_key(self):
        """Return the first component of the history key for the current hop.

        Edge-based recurrence uses the previous node (the incoming edge is
        ``previous -> current``); node-based recurrence collapses all incoming
        edges into one shared key.
        """
        if self.recurrence == "node":
            return _NO_SOURCE
        return self.previous if self.previous is not None else _NO_SOURCE

    @property
    def history(self) -> EdgeHistory:
        """The underlying ``b(u, v)`` bookkeeping (exposed for tests/analysis)."""
        return self._history
