"""Exact aggregate computation over the full graph.

The experiments need the ground-truth value of every aggregate to measure
relative estimation error.  These functions iterate the whole graph — they are
only legal for the experiment harness, never for the samplers, which must go
through the restrictive API.
"""

from __future__ import annotations

from typing import Dict

from ..exceptions import EmptyGraphError
from ..graphs.graph import Graph
from .aggregates import AggregateKind, AggregateQuery


def ground_truth(graph: Graph, query: AggregateQuery) -> float:
    """Return the exact value of ``query`` over every node of ``graph``."""
    if graph.number_of_nodes == 0:
        raise EmptyGraphError("cannot evaluate an aggregate on an empty graph")
    matching = 0
    total_value = 0.0
    for node in graph.nodes():
        attributes = graph.attributes(node)
        degree = graph.degree(node)
        if not query.matches(node, attributes):
            continue
        matching += 1
        total_value += query.measure_value(node, attributes, degree)
    if query.kind is AggregateKind.COUNT:
        return float(matching)
    if query.kind is AggregateKind.PROPORTION:
        return matching / graph.number_of_nodes
    if query.kind is AggregateKind.SUM:
        return total_value
    # AVERAGE
    if matching == 0:
        raise EmptyGraphError("no node matches the aggregate filter")
    return total_value / matching


def ground_truth_table(graph: Graph, queries) -> Dict[str, float]:
    """Return a label -> exact value mapping for several queries."""
    return {query.label: ground_truth(graph, query) for query in queries}


def average_degree(graph: Graph) -> float:
    """Exact average degree (the Figure 6 / 7 target value)."""
    return ground_truth(graph, AggregateQuery.average_degree())


def average_attribute(graph: Graph, attribute: str) -> float:
    """Exact average of a numeric attribute (the Figure 9 target value)."""
    return ground_truth(graph, AggregateQuery.average_attribute(attribute))
