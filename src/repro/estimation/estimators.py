"""Estimators turning walk samples into aggregate estimates.

SRW, NB-SRW, CNRW and GNRW all sample nodes with probability proportional to
degree, so plain sample means are biased towards high-degree nodes.  The
standard correction is importance reweighting with weights ``1/deg(v)``
(a Hansen-Hurwitz / respondent-driven-sampling style ratio estimator):

* AVG(f)        ≈ sum(f(v)/deg(v)) / sum(1/deg(v))
* COUNT(filter) ≈ |V| * AVG(indicator)      (needs a population size)
* SUM(f)        ≈ |V| * AVG(f)
* PROPORTION    ≈ AVG(indicator)

MHRW samples uniformly, so its estimates are plain sample means — both paths
are implemented so the experiment harness can treat every walker identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..exceptions import InsufficientSamplesError, InvalidConfigurationError
from ..types import Sample
from .aggregates import AggregateKind, AggregateQuery


@dataclass(frozen=True)
class Estimate:
    """An aggregate estimate plus basic uncertainty information."""

    value: float
    sample_size: int
    standard_error: Optional[float] = None

    def confidence_interval(self, z: float = 1.96):
        """Return a normal-approximation confidence interval (lo, hi)."""
        if self.standard_error is None:
            return (self.value, self.value)
        half = z * self.standard_error
        return (self.value - half, self.value + half)


def _validate_samples(samples: Sequence[Sample]) -> None:
    if not samples:
        raise InsufficientSamplesError("no samples provided")


def reweighted_mean(
    samples: Sequence[Sample],
    query: AggregateQuery,
) -> Estimate:
    """Degree-reweighted (ratio) estimator for degree-proportional samples.

    This is the estimator used with SRW/NB-SRW/CNRW/GNRW samples.  For
    conditional aggregates the filter is applied inside the ratio so both the
    numerator and the denominator are restricted to matching nodes.
    """
    _validate_samples(samples)
    numerator = 0.0
    denominator = 0.0
    ratios: List[float] = []
    weights: List[float] = []
    for sample in samples:
        if sample.degree <= 0:
            # A degree-0 node can never be reached by a walk; skip defensively.
            continue
        weight = 1.0 / sample.degree
        if query.kind is AggregateKind.PROPORTION:
            value = 1.0 if query.matches(sample.node, sample.attributes) else 0.0
        elif query.predicate is not None and not query.matches(sample.node, sample.attributes):
            value = 0.0
            if query.kind is AggregateKind.AVERAGE:
                # Conditional averages ignore non-matching nodes entirely.
                continue
        else:
            value = query.measure_value(sample.node, sample.attributes, sample.degree)
        numerator += weight * value
        denominator += weight
        ratios.append(value)
        weights.append(weight)
    if denominator <= 0:
        raise InsufficientSamplesError("no usable samples after filtering")
    mean = numerator / denominator
    std_error = _ratio_standard_error(ratios, weights, mean)
    return Estimate(value=mean, sample_size=len(ratios), standard_error=std_error)


def uniform_mean(samples: Sequence[Sample], query: AggregateQuery) -> Estimate:
    """Plain sample mean for uniformly distributed samples (MHRW)."""
    _validate_samples(samples)
    values: List[float] = []
    for sample in samples:
        if query.kind is AggregateKind.PROPORTION:
            values.append(1.0 if query.matches(sample.node, sample.attributes) else 0.0)
        elif query.predicate is not None and not query.matches(sample.node, sample.attributes):
            if query.kind is AggregateKind.AVERAGE:
                continue
            values.append(0.0)
        else:
            values.append(query.measure_value(sample.node, sample.attributes, sample.degree))
    if not values:
        raise InsufficientSamplesError("no usable samples after filtering")
    array = np.asarray(values, dtype=float)
    mean = float(array.mean())
    std_error = float(array.std(ddof=1) / np.sqrt(len(array))) if len(array) > 1 else None
    return Estimate(value=mean, sample_size=len(array), standard_error=std_error)


def estimate(
    samples: Sequence[Sample],
    query: AggregateQuery,
    uniform_samples: bool = False,
    population_size: Optional[int] = None,
) -> Estimate:
    """Estimate an aggregate from walk samples.

    Args:
        samples: Samples collected by a walk.
        query: The aggregate specification.
        uniform_samples: ``True`` for MHRW samples (uniform stationary
            distribution), ``False`` for degree-proportional samplers.
        population_size: Total number of users ``|V|``, required for SUM and
            COUNT aggregates (a third party typically knows or estimates it
            out of band).
    """
    base = uniform_mean(samples, query) if uniform_samples else reweighted_mean(samples, query)
    if query.kind in (AggregateKind.AVERAGE, AggregateKind.PROPORTION):
        return base
    if population_size is None:
        raise InvalidConfigurationError(
            f"{query.kind.value} aggregates need population_size to scale the mean"
        )
    scale = float(population_size)
    scaled_error = base.standard_error * scale if base.standard_error is not None else None
    return Estimate(value=base.value * scale, sample_size=base.sample_size, standard_error=scaled_error)


def _ratio_standard_error(
    values: Sequence[float], weights: Sequence[float], mean: float
) -> Optional[float]:
    """Delta-method standard error of the weighted ratio estimator."""
    n = len(values)
    if n < 2:
        return None
    values_arr = np.asarray(values, dtype=float)
    weights_arr = np.asarray(weights, dtype=float)
    weight_mean = weights_arr.mean()
    if weight_mean == 0:
        return None
    residuals = weights_arr * (values_arr - mean)
    variance = residuals.var(ddof=1) / (n * weight_mean**2)
    return float(np.sqrt(max(0.0, variance)))


class RunningEstimator:
    """Online (streaming) version of the degree-reweighted AVG estimator.

    Lets long crawls update an aggregate estimate after every sample without
    retaining the full sample list — the "local processing overhead is linear
    in the sample size" regime described in the paper's introduction.
    """

    def __init__(self, query: AggregateQuery, uniform_samples: bool = False) -> None:
        if query.kind not in (AggregateKind.AVERAGE, AggregateKind.PROPORTION):
            raise InvalidConfigurationError("RunningEstimator supports AVG/PROPORTION only")
        self.query = query
        self.uniform_samples = uniform_samples
        self._numerator = 0.0
        self._denominator = 0.0
        self._count = 0

    def update(self, sample: Sample) -> None:
        """Incorporate one sample."""
        if sample.degree <= 0:
            return
        if self.query.kind is AggregateKind.PROPORTION:
            value = 1.0 if self.query.matches(sample.node, sample.attributes) else 0.0
        else:
            if self.query.predicate is not None and not self.query.matches(
                sample.node, sample.attributes
            ):
                return
            value = self.query.measure_value(sample.node, sample.attributes, sample.degree)
        weight = 1.0 if self.uniform_samples else 1.0 / sample.degree
        self._numerator += weight * value
        self._denominator += weight
        self._count += 1

    def update_many(self, samples: Iterable[Sample]) -> None:
        for sample in samples:
            self.update(sample)

    @property
    def sample_size(self) -> int:
        return self._count

    @property
    def value(self) -> float:
        if self._denominator <= 0:
            raise InsufficientSamplesError("no usable samples yet")
        return self._numerator / self._denominator

    def estimate(self) -> Estimate:
        return Estimate(value=self.value, sample_size=self._count)
