"""Variance and effective-sample-size diagnostics for MCMC samples.

Definition 3 of the paper measures a walk's efficiency by the *asymptotic
variance* of the estimator built from its trajectory.  In practice that limit
is estimated from a finite trace; this module implements the standard tooling
(autocovariance, integrated autocorrelation time, batch means, effective
sample size) plus a Monte-Carlo estimator of the asymptotic variance used by
the theory-validation tests to confirm Theorem 2 / Theorem 4 empirically:
``V_inf(CNRW) <= V_inf(SRW)`` and ``V_inf(GNRW) <= V_inf(SRW)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import InsufficientSamplesError


def autocovariance(values: Sequence[float], lag: int) -> float:
    """Return the lag-``lag`` autocovariance of ``values``."""
    array = np.asarray(values, dtype=float)
    n = len(array)
    if lag < 0:
        raise ValueError("lag must be non-negative")
    if n <= lag:
        raise InsufficientSamplesError("series too short for requested lag")
    mean = array.mean()
    front = array[: n - lag] - mean
    back = array[lag:] - mean
    return float((front * back).sum() / n)


def autocorrelation(values: Sequence[float], lag: int) -> float:
    """Return the lag-``lag`` autocorrelation of ``values`` (0 when var=0)."""
    variance = autocovariance(values, 0)
    if variance == 0:
        return 0.0
    return autocovariance(values, lag) / variance


def integrated_autocorrelation_time(
    values: Sequence[float], max_lag: Optional[int] = None
) -> float:
    """Return the integrated autocorrelation time via Geyer's initial-positive rule.

    Sums consecutive-pair autocorrelations while the pair sums stay positive,
    which avoids the noise blow-up of summing to arbitrary lags.
    """
    array = np.asarray(values, dtype=float)
    n = len(array)
    if n < 4:
        raise InsufficientSamplesError("need at least 4 values")
    if autocovariance(array, 0) == 0:
        return 1.0
    if max_lag is None:
        max_lag = n // 2
    tau = 1.0
    lag = 1
    while lag + 1 <= max_lag:
        pair = autocorrelation(array, lag) + autocorrelation(array, lag + 1)
        if pair <= 0:
            break
        tau += 2.0 * pair
        lag += 2
    return max(1.0, tau)


def effective_sample_size(values: Sequence[float]) -> float:
    """Return ``n / tau``: the number of effectively independent samples."""
    array = np.asarray(values, dtype=float)
    if len(array) == 0:
        raise InsufficientSamplesError("empty series")
    if len(array) < 4 or autocovariance(array, 0) == 0:
        return float(len(array))
    return len(array) / integrated_autocorrelation_time(array)


def batch_means_variance(values: Sequence[float], num_batches: int = 20) -> float:
    """Return the batch-means estimate of ``Var(mean)``.

    Splits the trace into ``num_batches`` contiguous batches and uses the
    variance of the batch means — the classic MCMC estimator that remains
    valid under serial correlation.
    """
    array = np.asarray(values, dtype=float)
    if num_batches < 2:
        raise ValueError("need at least 2 batches")
    if len(array) < 2 * num_batches:
        raise InsufficientSamplesError("series too short for the requested batches")
    batch_size = len(array) // num_batches
    trimmed = array[: batch_size * num_batches]
    batches = trimmed.reshape(num_batches, batch_size)
    means = batches.mean(axis=1)
    return float(means.var(ddof=1) / num_batches)


def asymptotic_variance_estimate(values: Sequence[float], num_batches: int = 20) -> float:
    """Return an estimate of the paper's asymptotic variance ``lim n*Var(mean)``.

    Uses batch means: ``n * Var(mean_hat) ~= batch_size * Var(batch means)``.
    """
    array = np.asarray(values, dtype=float)
    variance_of_mean = batch_means_variance(array, num_batches=num_batches)
    return float(len(array) * variance_of_mean)


def asymptotic_variance_across_chains(chain_means: Sequence[float], chain_length: int) -> float:
    """Estimate ``lim n*Var(mean)`` from the means of many independent chains.

    This is the estimator used by the theory-validation tests: run many
    independent walks of equal length ``chain_length``, take the estimator
    value of each, and scale the across-chain variance by the chain length.
    It is unbiased for finite-``n`` ``n * Var`` and converges to the asymptotic
    variance as ``chain_length`` grows.
    """
    means = np.asarray(chain_means, dtype=float)
    if len(means) < 2:
        raise InsufficientSamplesError("need at least 2 chains")
    if chain_length < 1:
        raise ValueError("chain_length must be positive")
    return float(chain_length * means.var(ddof=1))


def mean_squared_error(estimates: Sequence[float], truth: float) -> float:
    """Return the MSE of a set of estimates against the ground truth."""
    array = np.asarray(estimates, dtype=float)
    if len(array) == 0:
        raise InsufficientSamplesError("no estimates")
    return float(((array - truth) ** 2).mean())


def running_means(values: Sequence[float]) -> List[float]:
    """Return the sequence of running (cumulative) means of ``values``."""
    array = np.asarray(values, dtype=float)
    if len(array) == 0:
        return []
    return list(np.cumsum(array) / np.arange(1, len(array) + 1))
