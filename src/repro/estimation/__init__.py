"""Aggregate estimation from walk samples."""

from .aggregates import DEGREE, AggregateKind, AggregateQuery
from .estimators import Estimate, RunningEstimator, estimate, reweighted_mean, uniform_mean
from .ground_truth import average_attribute, average_degree, ground_truth, ground_truth_table
from .variance import (
    asymptotic_variance_across_chains,
    asymptotic_variance_estimate,
    autocorrelation,
    autocovariance,
    batch_means_variance,
    effective_sample_size,
    integrated_autocorrelation_time,
    mean_squared_error,
    running_means,
)

__all__ = [
    "AggregateKind",
    "AggregateQuery",
    "DEGREE",
    "Estimate",
    "RunningEstimator",
    "asymptotic_variance_across_chains",
    "asymptotic_variance_estimate",
    "autocorrelation",
    "autocovariance",
    "average_attribute",
    "average_degree",
    "batch_means_variance",
    "effective_sample_size",
    "estimate",
    "ground_truth",
    "ground_truth_table",
    "integrated_autocorrelation_time",
    "mean_squared_error",
    "reweighted_mean",
    "running_means",
    "uniform_mean",
]
