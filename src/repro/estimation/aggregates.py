"""Aggregate query specifications.

The motivating workload of the paper is answering global and conditional
aggregates (SUM, AVG, COUNT — e.g. "the average friend count of all users
living in Texas") from sampled nodes.  An :class:`AggregateQuery` captures
that specification declaratively: the aggregate kind, the measure attribute
(or an arbitrary measure function) and an optional node-level filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Mapping, Optional

from ..exceptions import InvalidConfigurationError
from ..types import NodeId


class AggregateKind(str, Enum):
    """Supported aggregate types."""

    AVERAGE = "average"
    SUM = "sum"
    COUNT = "count"
    PROPORTION = "proportion"


#: Special measure name meaning "the degree of the node as seen by the API".
DEGREE = "__degree__"


@dataclass(frozen=True)
class AggregateQuery:
    """A declarative aggregate query over the nodes of a social network.

    Attributes:
        kind: The aggregate type.
        measure: Attribute name to aggregate (use :data:`DEGREE` for node
            degree), or ``None`` for COUNT/PROPORTION queries that only need
            the filter.
        predicate: Optional filter ``f(node, attributes) -> bool`` restricting
            the aggregate to matching nodes (conditional aggregates).
        name: Optional human-readable label used in reports.

    Example:
        >>> avg_degree = AggregateQuery.average_degree()
        >>> avg_texan_age = AggregateQuery(
        ...     kind=AggregateKind.AVERAGE,
        ...     measure="age",
        ...     predicate=lambda node, attrs: attrs.get("state") == "TX",
        ...     name="avg age in Texas",
        ... )
    """

    kind: AggregateKind
    measure: Optional[str] = None
    predicate: Optional[Callable[[NodeId, Mapping[str, Any]], bool]] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind in (AggregateKind.AVERAGE, AggregateKind.SUM) and self.measure is None:
            raise InvalidConfigurationError(f"{self.kind.value} queries need a measure")
        if self.kind is AggregateKind.PROPORTION and self.predicate is None:
            raise InvalidConfigurationError("proportion queries need a predicate")

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def matches(self, node: NodeId, attributes: Mapping[str, Any]) -> bool:
        """Return whether the node passes the (optional) filter."""
        if self.predicate is None:
            return True
        return bool(self.predicate(node, attributes))

    def measure_value(
        self, node: NodeId, attributes: Mapping[str, Any], degree: int
    ) -> float:
        """Return the numeric measure of a node (0.0 for missing values)."""
        if self.measure is None:
            return 1.0
        if self.measure == DEGREE:
            return float(degree)
        raw = attributes.get(self.measure, 0.0)
        try:
            return float(raw)
        except (TypeError, ValueError):
            return 0.0

    @property
    def label(self) -> str:
        """A printable label for reports."""
        if self.name:
            return self.name
        measure = "degree" if self.measure == DEGREE else (self.measure or "*")
        suffix = " (filtered)" if self.predicate is not None else ""
        return f"{self.kind.value}({measure}){suffix}"

    # ------------------------------------------------------------------
    # Convenience constructors matching the paper's workloads
    # ------------------------------------------------------------------
    @classmethod
    def average_degree(cls) -> "AggregateQuery":
        """AVG(degree) — the Figure 6 / 7 workload."""
        return cls(kind=AggregateKind.AVERAGE, measure=DEGREE, name="average degree")

    @classmethod
    def average_attribute(cls, attribute: str) -> "AggregateQuery":
        """AVG(attribute) — e.g. average reviews count (Figure 9b)."""
        return cls(kind=AggregateKind.AVERAGE, measure=attribute, name=f"average {attribute}")

    @classmethod
    def sum_attribute(cls, attribute: str) -> "AggregateQuery":
        return cls(kind=AggregateKind.SUM, measure=attribute, name=f"sum {attribute}")

    @classmethod
    def count(cls, predicate=None, name: Optional[str] = None) -> "AggregateQuery":
        return cls(kind=AggregateKind.COUNT, predicate=predicate, name=name or "count")

    @classmethod
    def proportion(cls, predicate, name: Optional[str] = None) -> "AggregateQuery":
        return cls(kind=AggregateKind.PROPORTION, predicate=predicate, name=name or "proportion")
