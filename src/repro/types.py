"""Shared type aliases and tiny value objects used across the library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Mapping, Sequence, Tuple, Union

#: A node identifier.  Anything hashable works; the loaders produce ``int``.
NodeId = Hashable

#: An undirected edge as an (ordered) pair of node ids.
Edge = Tuple[NodeId, NodeId]

#: Node attribute mapping, e.g. ``{"age": 31, "city": "Austin"}``.
AttributeMap = Mapping[str, Any]

#: A measure function ``f(node, attributes) -> float`` used by estimators.
MeasureFunction = Callable[[NodeId, AttributeMap], float]

#: A node-level predicate used by conditional aggregates.
NodePredicate = Callable[[NodeId, AttributeMap], bool]

#: Numeric scalar accepted by metrics helpers.
Number = Union[int, float]


@dataclass(frozen=True)
class Transition:
    """One step of a random walk.

    Attributes:
        source: Node the walk was at before the step.
        target: Node the walk moved to.
        step_index: Zero-based index of the step within the walk.
    """

    source: NodeId
    target: NodeId
    step_index: int


@dataclass(frozen=True)
class Sample:
    """A sampled node together with the information needed to reweight it.

    Attributes:
        node: The sampled node id.
        degree: Degree of the node as observed through the API.
        attributes: Attribute mapping of the node at sampling time.
        step_index: Walk step at which the node was emitted as a sample.
        query_cost: Cumulative number of unique queries spent when the sample
            was emitted (useful for cost-accuracy curves).
    """

    node: NodeId
    degree: int
    attributes: Dict[str, Any] = field(default_factory=dict)
    step_index: int = 0
    query_cost: int = 0

    def value(self, attribute: str, default: float = 0.0) -> float:
        """Return a numeric attribute of the sample, or ``default``."""
        raw = self.attributes.get(attribute, default)
        try:
            return float(raw)
        except (TypeError, ValueError):
            return default


def as_edge_key(u: NodeId, v: NodeId) -> Edge:
    """Return the directed edge key ``(u, v)`` used by history bookkeeping.

    CNRW/GNRW history is keyed by the *directed* traversal ``u -> v`` even on
    undirected graphs, so no canonicalisation is performed here; the function
    exists to make call sites explicit about that intent.
    """
    return (u, v)


def canonical_edge(u: NodeId, v: NodeId) -> Edge:
    """Return an order-independent key for the undirected edge ``{u, v}``."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


def ensure_sequence(values: Union[Number, Sequence[Number]]) -> Sequence[Number]:
    """Wrap a scalar in a list; pass sequences through unchanged."""
    if isinstance(values, (int, float)):
        return [values]
    return values
