"""Benchmark: batched WalkScheduler versus per-walker sequential execution.

The walk-engine refactor split samplers into transition kernels plus drivers
precisely so a batch driver could amortise per-query overhead across an
ensemble.  This benchmark pins the claim: a 16-walker CNRW ensemble on a
>= 100k-node CSR-backed graph must run at least 1.2x faster through the
:class:`~repro.engine.scheduler.WalkScheduler` (one deduplicated
``query_many`` frontier batch per round, view-fed stepping) than as 16
sequential :meth:`~repro.walks.base.RandomWalk.run` calls over an identical
stack — while producing *bit-identical walks*, which the test also asserts.

Set ``REPRO_BENCH_SCALE`` < 1 (e.g. 0.25) for a quick smoke run.
"""

from __future__ import annotations

import gc
import statistics
import time

import numpy as np
import pytest

from repro.api import CSRBackend, build_api
from repro.engine import WalkScheduler
from repro.rng import derive_seed
from repro.walks import make_walker

from conftest import bench_scale, record_bench_result

#: Graph size: 100k nodes at the default scale (the acceptance target).
NUM_NODES = max(10_000, int(100_000 * bench_scale()))
OUT_DEGREE = 8
WALKERS = 16
STEPS = 400
WALKER_NAME = "cnrw"
SEED = 0
#: Required speedup of the scheduler over sequential per-walker execution.
#: The acceptance bar applies at the 100k-node target scale; a reduced-scale
#: smoke run (REPRO_BENCH_SCALE < 1) asserts parity only — smaller graphs
#: revisit more, cache hits cost the sequential driver almost nothing, and a
#: wall-clock race near 1.0x would be CI noise, not signal.
REQUIRED_SPEEDUP = 1.2 if NUM_NODES >= 100_000 else None
#: Interleaved timing repetitions per contender (medians are compared, so a
#: transient CPU-contention burst cannot flip the verdict either way).
TIMING_REPEATS = 7


def _synthetic_edges(num_nodes: int, out_degree: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    sources = np.repeat(np.arange(num_nodes, dtype=np.int64), out_degree)
    targets = rng.integers(0, num_nodes, size=sources.size, dtype=np.int64)
    return np.stack([sources, targets], axis=1)


@pytest.fixture(scope="module")
def csr_backend() -> CSRBackend:
    edges = _synthetic_edges(NUM_NODES, OUT_DEGREE)
    return CSRBackend.from_edges(edges, num_nodes=NUM_NODES, name="synthetic-csr")


@pytest.fixture(scope="module")
def starts(csr_backend):
    """Distinct non-isolated start nodes, one per walker."""
    rng = np.random.default_rng(SEED)
    chosen = []
    seen = set()
    while len(chosen) < WALKERS:
        node = int(rng.integers(0, len(csr_backend)))
        if node in seen:
            continue
        seen.add(node)
        if csr_backend.metadata(node)["degree"] > 0:
            chosen.append(node)
    return chosen


def _walker_seeds():
    return [derive_seed(SEED, index) for index in range(WALKERS)]


def _sequential_ensemble(backend, start_nodes):
    """Baseline: N independent RandomWalk.run calls over one shared stack."""
    api = build_api(backend)
    results = [
        make_walker(WALKER_NAME, api=api, seed=seed).run(start, max_steps=STEPS)
        for seed, start in zip(_walker_seeds(), start_nodes)
    ]
    return results


def _scheduled_ensemble(backend, start_nodes):
    """Contender: the same walkers advanced in lockstep by the scheduler."""
    api = build_api(backend)
    walkers = [
        make_walker(WALKER_NAME, api=api, seed=seed) for seed in _walker_seeds()
    ]
    return WalkScheduler(api).run(walkers, start_nodes, steps=STEPS)


def test_bench_sequential_ensemble(benchmark, csr_backend, starts):
    results = benchmark(_sequential_ensemble, csr_backend, starts)
    assert all(result.steps == STEPS for result in results)


def test_bench_scheduled_ensemble(benchmark, csr_backend, starts):
    results = benchmark(_scheduled_ensemble, csr_backend, starts)
    assert all(result.steps == STEPS for result in results)


def test_scheduler_beats_sequential_execution(csr_backend, starts):
    """Acceptance check: batched lockstep execution wins by >= 1.2x at scale.

    Both contenders run the same 16 CNRW walkers (same derived seeds, same
    starts) for the same number of steps over identical fresh stacks; the
    walks must come out bit-identical, and the scheduler's median wall-clock
    time over interleaved repetitions must beat the sequential baseline by
    the required factor.
    """
    assert NUM_NODES >= 10_000

    def timed(function):
        # Collector pauses land on whichever contender is running; park the
        # GC outside the timed section so the comparison stays fair.
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            result = function(csr_backend, starts)
            return time.perf_counter() - started, result
        finally:
            gc.enable()

    sequential_times, scheduled_times = [], []
    sequential_results = scheduled_results = None
    for _ in range(TIMING_REPEATS):
        seconds, sequential_results = timed(_sequential_ensemble)
        sequential_times.append(seconds)
        seconds, scheduled_results = timed(_scheduled_ensemble)
        scheduled_times.append(seconds)

    # Golden parity: the scheduler replays the sequential walks exactly.
    assert [r.path for r in scheduled_results] == [r.path for r in sequential_results]

    sequential_seconds = statistics.median(sequential_times)
    scheduled_seconds = statistics.median(scheduled_times)
    speedup = sequential_seconds / scheduled_seconds
    print(
        f"\n{WALKERS}x {WALKER_NAME} x {STEPS} steps on {NUM_NODES} nodes: "
        f"sequential {sequential_seconds * 1e3:.1f} ms, scheduled "
        f"{scheduled_seconds * 1e3:.1f} ms ({speedup:.2f}x)"
    )
    record_bench_result(
        "engine.scheduler_vs_sequential",
        nodes=NUM_NODES,
        walkers=WALKERS,
        steps=STEPS,
        sequential_seconds=sequential_seconds,
        scheduled_seconds=scheduled_seconds,
        speedup=speedup,
        required_speedup=REQUIRED_SPEEDUP,
    )
    if REQUIRED_SPEEDUP is not None:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"expected the batched scheduler to be >= {REQUIRED_SPEEDUP}x faster than "
            f"sequential per-walker execution (sequential {sequential_seconds:.3f}s "
            f"vs scheduled {scheduled_seconds:.3f}s = {speedup:.2f}x)"
        )
