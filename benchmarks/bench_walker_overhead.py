"""Micro-benchmark: per-step local processing overhead of each walker.

The paper argues (Section 1.2) that local processing cost is negligible next
to the query cost: CNRW/GNRW only add O(1) amortised hash-map work per step
(Section 3.3 / 4.2).  This benchmark times a fixed-length walk for every
sampler on the same graph so the relative overhead of the history bookkeeping
is visible, and asserts it stays within a small constant factor of SRW.
"""

from __future__ import annotations

import pytest

from repro.api import GraphAPI
from repro.graphs import load_dataset
from repro.walks import make_walker

STEPS = 3000
WALKERS = ["srw", "nbsrw", "cnrw", "gnrw_by_degree", "nbcnrw", "mhrw"]


@pytest.fixture(scope="module")
def overhead_graph():
    return load_dataset("googleplus_like", seed=0, scale=0.15)


@pytest.mark.parametrize("name", WALKERS)
def test_walker_step_overhead(benchmark, overhead_graph, name):
    start = overhead_graph.nodes()[0]

    def run_walk():
        api = GraphAPI(overhead_graph)
        walker = make_walker(name, api=api, seed=1)
        return walker.run(start, max_steps=STEPS)

    result = benchmark(run_walk)
    assert result.steps == STEPS
