"""Benchmark: the crawl warehouse versus replaying the dumps it ingested.

The warehouse justifies itself on two numbers, both asserted here so the
claims are CI-checkable rather than anecdotal:

1. *Queryability.*  Answering an aggregate (the degree histogram) from an
   ingested >= 100k-node crawl — open the store, run one indexed SQL
   group-by — must be >= 5x faster than the only alternative the dump
   offers: replaying it (``load_crawl`` parses every JSONL record back into
   RAM) and aggregating in Python.  The one-off ingest cost that buys this
   is measured and recorded alongside, without a floor: ingest parses the
   same records *and* writes the store, so it is paid once per crawl while
   the replay tax is paid on every question.
2. *Steady state.*  A batched 16-walker ensemble served from the warehouse's
   WAL readers must stay within 1.5x of the same ensemble over the in-RAM
   :class:`~repro.api.backend.CSRBackend` — two indexed lookups per fresh
   fetch, not a slow path — while producing bit-identical walks.

Set ``REPRO_BENCH_SCALE`` < 1 (e.g. 0.25) for a quick smoke run.
"""

from __future__ import annotations

import time
from collections import Counter

import numpy as np
import pytest

from repro.api import CSRBackend, build_api
from repro.engine import WalkScheduler
from repro.storage import dump_crawl, load_crawl
from repro.walks import make_walker
from repro.warehouse import CrawlWarehouse, WarehouseBackend

from conftest import bench_scale, record_bench_result

#: Graph size: 100k nodes at the default scale (the acceptance target).
NUM_NODES = max(10_000, int(100_000 * bench_scale()))
OUT_DEGREE = 8
NUM_WALKERS = 16
WALK_STEPS = 256
#: Queryability acceptance threshold: warehouse aggregate vs dump replay.
MIN_AGGREGATE_SPEEDUP = 5.0
#: Steady-state acceptance threshold: warehouse walk time vs in-RAM CSR.
MAX_WALK_SLOWDOWN = 1.5


def _synthetic_edges(num_nodes: int, out_degree: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    sources = np.repeat(np.arange(num_nodes, dtype=np.int64), out_degree)
    targets = rng.integers(0, num_nodes, size=sources.size, dtype=np.int64)
    return np.stack([sources, targets], axis=1)


def _best_of(function, *args, repeats=3):
    times = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function(*args)
        times.append(time.perf_counter() - started)
    return min(times), result


@pytest.fixture(scope="module")
def csr_backend() -> CSRBackend:
    edges = _synthetic_edges(NUM_NODES, OUT_DEGREE)
    return CSRBackend.from_edges(edges, num_nodes=NUM_NODES, name="synthetic-csr")


@pytest.fixture(scope="module")
def dump_path(csr_backend, tmp_path_factory):
    """A full crawl dump of the synthetic graph (the ingest workload)."""
    return dump_crawl(
        csr_backend,
        tmp_path_factory.mktemp("bench-wh") / "crawl.jsonl",
        nodes=csr_backend.node_ids(),
        name="synthetic-crawl",
    )


@pytest.fixture(scope="module")
def warehouse_path(dump_path, tmp_path_factory):
    """The dump ingested once, module-wide; ingest time is recorded here."""
    store = tmp_path_factory.mktemp("bench-wh") / "wh.sqlite"
    started = time.perf_counter()
    with CrawlWarehouse.create(store, name="bench") as warehouse:
        report = warehouse.ingest(dump_path)
    ingest_seconds = time.perf_counter() - started
    assert report.new_nodes == NUM_NODES
    record_bench_result(
        "warehouse.ingest",
        nodes=NUM_NODES,
        records=report.records,
        ingest_seconds=ingest_seconds,
    )
    return store


def _replay_histogram(path):
    """The dump's only route to an aggregate: full parse, then Python."""
    backend = load_crawl(path)
    histogram = Counter(
        backend.fetch(node).degree for node in backend.node_ids()
    )
    return sorted(histogram.items())


def _warehouse_histogram(path):
    """The warehouse route: open the store, one indexed SQL group-by."""
    with CrawlWarehouse.open(path) as warehouse:
        return warehouse.degree_histogram()


def _ensemble_walk(source):
    """One batched 16-walker ensemble; returns (paths, unique_queries)."""
    api = build_api(source)
    walkers = [make_walker("srw", api=api, seed=seed) for seed in range(NUM_WALKERS)]
    starts = [(seed * 7919) % NUM_NODES for seed in range(NUM_WALKERS)]
    results = WalkScheduler(api).run(walkers, starts, steps=WALK_STEPS)
    return [result.path for result in results], api.unique_queries


def test_bench_ingest_dump(benchmark, dump_path, tmp_path):
    counter = iter(range(10_000))

    def ingest_once():
        store = tmp_path / f"wh-{next(counter)}.sqlite"
        with CrawlWarehouse.create(store) as warehouse:
            return warehouse.ingest(dump_path)

    report = benchmark.pedantic(ingest_once, rounds=3, iterations=1)
    assert report.new_nodes == NUM_NODES


def test_bench_warehouse_aggregate(benchmark, warehouse_path):
    histogram = benchmark(_warehouse_histogram, warehouse_path)
    assert sum(count for _, count in histogram) == NUM_NODES


def test_bench_warehouse_ensemble_walk(benchmark, warehouse_path):
    backend = WarehouseBackend(warehouse_path)
    try:
        paths, unique = benchmark.pedantic(
            _ensemble_walk, args=(backend,), rounds=3, iterations=1
        )
        assert len(paths) == NUM_WALKERS and unique > 0
    finally:
        backend.close()


def test_warehouse_aggregate_beats_replay_5x(dump_path, warehouse_path):
    """Acceptance check: ingested warehouse answers >= 5x faster than replay.

    Same question — the full degree histogram of a >= 100k-node crawl — two
    routes: re-parse the dump into a ReplayBackend and aggregate in Python,
    or open the ingested store and let the ``nodes(degree)`` index answer.
    Both must agree exactly before the clocks are compared.
    """
    assert NUM_NODES >= 10_000
    replay_seconds, replay_histogram = _best_of(_replay_histogram, dump_path)
    warehouse_seconds, warehouse_histogram = _best_of(
        _warehouse_histogram, warehouse_path
    )
    assert warehouse_histogram == replay_histogram
    speedup = replay_seconds / warehouse_seconds
    print(
        f"\ndegree histogram over {NUM_NODES}-node crawl: replay "
        f"{replay_seconds * 1e3:.1f} ms, warehouse "
        f"{warehouse_seconds * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    record_bench_result(
        "warehouse.aggregate_vs_replay",
        nodes=NUM_NODES,
        replay_seconds=replay_seconds,
        warehouse_seconds=warehouse_seconds,
        speedup=speedup,
        required_speedup=MIN_AGGREGATE_SPEEDUP,
    )
    assert speedup >= MIN_AGGREGATE_SPEEDUP, (
        f"expected the ingested warehouse to answer >= "
        f"{MIN_AGGREGATE_SPEEDUP}x faster than replaying the dump (replay "
        f"{replay_seconds:.4f}s vs warehouse {warehouse_seconds:.4f}s, "
        f"{speedup:.1f}x)"
    )


def test_warehouse_walks_within_1_5x_of_ram_csr(csr_backend, warehouse_path):
    """Acceptance check: warehouse-served ensembles within 1.5x of RAM CSR.

    Both ensembles use the same seeds and starts, so before comparing clocks
    the walks themselves must be bit-identical — storage may only change
    *where* the records live, never what the sampler sees.
    """
    warehouse_backend = WarehouseBackend(warehouse_path)
    try:
        ram_paths, ram_unique = _ensemble_walk(csr_backend)
        wh_paths, wh_unique = _ensemble_walk(warehouse_backend)
        assert wh_paths == ram_paths
        assert wh_unique == ram_unique

        ram_seconds, _ = _best_of(_ensemble_walk, csr_backend)
        wh_seconds, _ = _best_of(_ensemble_walk, warehouse_backend)
    finally:
        warehouse_backend.close()
    ratio = wh_seconds / ram_seconds
    print(
        f"\n{NUM_WALKERS}-walker x {WALK_STEPS}-step ensemble over {NUM_NODES} "
        f"nodes: ram {ram_seconds * 1e3:.1f} ms, warehouse "
        f"{wh_seconds * 1e3:.1f} ms ({ratio:.2f}x)"
    )
    record_bench_result(
        "warehouse.walk_vs_ram_csr",
        nodes=NUM_NODES,
        walkers=NUM_WALKERS,
        steps=WALK_STEPS,
        ram_seconds=ram_seconds,
        warehouse_seconds=wh_seconds,
        ratio=ratio,
        max_ratio=MAX_WALK_SLOWDOWN,
    )
    assert ratio <= MAX_WALK_SLOWDOWN, (
        f"expected warehouse ensemble within {MAX_WALK_SLOWDOWN}x of in-RAM "
        f"CSR (ram {ram_seconds:.3f}s vs warehouse {wh_seconds:.3f}s, "
        f"{ratio:.2f}x)"
    )
