"""Figure 10: the clustered graph (three cliques of 10, 30 and 50 nodes).

An "ill-formed" graph with tiny conductance: a memoryless walk gets stuck in
one clique for a long time.  The paper reports KL divergence, L2 distance and
estimation error against query cost for SRW, NB-SRW, CNRW and GNRW; the
history-aware walks win on all three.
"""

from __future__ import annotations

from repro.experiments import figure10, render_comparison, render_report


def test_figure10_clustered_graph(benchmark):
    report = benchmark.pedantic(
        figure10,
        kwargs={"seed": 0, "scale": 1.0, "trials": 15, "budgets": (20, 40, 60, 80, 100, 120, 140)},
        iterations=1,
        rounds=1,
    )
    print()
    print(render_report(report))
    error_table = report.get("relative_error")
    kl_table = report.get("kl_divergence")
    l2_table = report.get("l2_distance")
    print()
    print(render_comparison(error_table, baseline="SRW", challengers=["CNRW", "GNRW", "NB-SRW"]))
    # On the ill-formed graph the history-aware walks must not lose to SRW on
    # any bias measure (in the paper they win by a clear margin).
    assert error_table.dominates("CNRW", "SRW", tolerance=0.15)
    assert error_table.dominates("GNRW", "SRW", tolerance=0.15)
    assert kl_table.dominates("CNRW", "SRW", tolerance=0.15)
    assert kl_table.dominates("GNRW", "SRW", tolerance=0.15)
    assert l2_table.dominates("GNRW", "SRW", tolerance=0.15)
