"""Benchmark: enabled telemetry must not change the economics of a run.

Telemetry is opt-in, but opting in must stay cheap: the registry guard is
one module-global read, counters are dict adds under a nanosecond lock, and
spans only materialise where requests already cross a process boundary.
Three workloads pin the cost from three directions:

* ``vector_ensemble`` — a 1000-walker vector ensemble over a CSR graph, the
  tightest loop in the codebase; asserts the <= 10% ratio bar.
* ``remote_walk`` — whole walks served by ``POST /walk`` on the asyncio
  frontend (the serving stack's remote flagship: one traced round trip per
  walk); asserts the <= 10% ratio bar.
* ``client_driven_fetches`` — a budgeted walk fetching node-by-node over
  loopback HTTP, where *every* request carries an ``X-Repro-Trace`` header
  and returns an ``X-Repro-Span`` echo.  The echo is a fixed per-request
  cost (span mint + header parse on the server, one extra header line each
  way), so the honest bound is absolute, not relative: the telemetry delta
  must stay under ``FETCH_BUDGET_US`` per wire request.  Against loopback's
  ~100 us round trip that fixed cost is a large *ratio*; against any real
  network RTT (>= 1 ms) it is under 3%.  The ratio is still recorded.

Interleaved timings (min-of-N for the ratio bars, median of paired
differences for the absolute bar) keep scheduler noise out of the verdict; the
bars are asserted at the default scale and recorded (never asserted) on
reduced ``REPRO_BENCH_SCALE`` smoke runs, where sub-millisecond baselines
turn ratios into coin flips.
"""

from __future__ import annotations

import gc
import time

import numpy as np

from repro.api import CSRBackend, HTTPGraphBackend, build_api
from repro.engine import VectorScheduler
from repro.obs import Tracer, disable_telemetry, enable_telemetry, global_registry
from repro.server import serve_backend, serve_backend_async
from repro.walks import make_walker
import repro.obs as obs

from conftest import bench_scale, record_bench_result

NUM_NODES = max(5_000, int(50_000 * bench_scale()))
OUT_DEGREE = 8
WALKERS = 1000
#: ~25 ms per sample at full scale: long enough that a single lucky
#: scheduler slice cannot move the min-of-N by the width of the bar.
VECTOR_STEPS = max(20, int(200 * bench_scale()))
REMOTE_BUDGET = max(100, int(400 * bench_scale()))
#: Walks per timed sample on the server-side path (one POST /walk each).
#: Long samples (~90 ms) average out thread-placement luck between the
#: event loop, its walk executor and the client.
REMOTE_WALKS = 12
SEED = 0
REPEATS = 7
#: The ratio bar for the two flagship paths.  Reduced-scale smoke runs
#: record the ratio only.
MAX_OVERHEAD = 1.10 if bench_scale() >= 1.0 else None
#: The absolute bar for the per-fetch wire-echo cost, in microseconds per
#: traced request.  The full bill — one buffered client span, the wire
#: header each way, the server's echoed span, request counters, a latency
#: histogram observation and two cache-probe counters — measures ~30-40 us
#: after optimisation (deferred echo parsing, counter-based span ids,
#: fast-path label keys).  The verdict uses the *median of paired
#: interleaved differences*, which cancels load drift that min-of-N
#: cannot; 55 us on top of that still catches any reintroduction of
#: eager per-request parsing or per-id urandom (each ~20 us/request).
FETCH_BUDGET_US = 55.0 if bench_scale() >= 1.0 else None


def _make_backend() -> CSRBackend:
    rng = np.random.default_rng(SEED)
    sources = np.repeat(np.arange(NUM_NODES, dtype=np.int64), OUT_DEGREE)
    targets = rng.integers(0, NUM_NODES, size=sources.size, dtype=np.int64)
    edges = np.stack([sources, targets], axis=1)
    return CSRBackend.from_edges(edges, num_nodes=NUM_NODES, name="obs-bench-csr")


def _timed(function):
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        function()
        return time.perf_counter() - started
    finally:
        gc.enable()


def _race_samples(baseline, instrumented, repeats=REPEATS):
    """Interleaved timing pairs: (base_times, obs_times), one pair per repeat."""
    # One untimed warm-up pair: connections, allocator arenas and lazy
    # imports must not land in either side's first sample.
    baseline()
    _with_telemetry(instrumented)()
    base_times, obs_times = [], []
    for _ in range(repeats):
        base_times.append(_timed(baseline))
        obs_times.append(_timed(_with_telemetry(instrumented)))
    return base_times, obs_times


def _race(baseline, instrumented, repeats=REPEATS):
    """Interleaved min-of-N: (baseline_seconds, telemetry_seconds)."""
    base_times, obs_times = _race_samples(baseline, instrumented, repeats)
    return min(base_times), min(obs_times)


def _with_telemetry(function):
    def run():
        tracer = Tracer()
        enable_telemetry()
        try:
            with obs.use_tracer(tracer):
                function()
        finally:
            disable_telemetry()
            global_registry().reset()
    return run


def _record(name, baseline_seconds, telemetry_seconds, **fields):
    overhead = telemetry_seconds / baseline_seconds
    print(
        f"\n{name}: off {baseline_seconds * 1e3:.1f} ms, "
        f"on {telemetry_seconds * 1e3:.1f} ms ({(overhead - 1) * 100:+.1f}%)"
    )
    record_bench_result(
        name,
        baseline_seconds=baseline_seconds,
        telemetry_seconds=telemetry_seconds,
        overhead_ratio=overhead,
        **fields,
    )
    return overhead


def _assert_ratio(name, overhead, baseline_seconds, telemetry_seconds):
    if MAX_OVERHEAD is not None:
        assert overhead <= MAX_OVERHEAD, (
            f"{name}: enabled telemetry costs {(overhead - 1) * 100:.1f}% "
            f"(off {baseline_seconds:.4f}s vs on {telemetry_seconds:.4f}s); "
            f"the bar is {(MAX_OVERHEAD - 1) * 100:.0f}%"
        )


def test_obs_overhead_vector_ensemble():
    """A 1k-walker vector ensemble pays <= 10% for enabled telemetry."""
    backend = _make_backend()
    rng = np.random.default_rng(SEED)
    degrees = backend.indptr[1:] - backend.indptr[:-1]
    eligible = np.flatnonzero(degrees > 0)
    starts = [int(node) for node in rng.choice(eligible, size=WALKERS, replace=False)]

    def run():
        api = build_api(backend)
        VectorScheduler(api).run("srw", starts, steps=VECTOR_STEPS, seed=SEED)

    baseline_seconds, telemetry_seconds = _race(run, run)
    overhead = _record(
        "obs_overhead.vector_ensemble",
        baseline_seconds,
        telemetry_seconds,
        max_overhead=MAX_OVERHEAD,
        nodes=NUM_NODES,
        walkers=WALKERS,
        steps=VECTOR_STEPS,
    )
    _assert_ratio(
        "obs_overhead.vector_ensemble", overhead, baseline_seconds, telemetry_seconds
    )


def test_obs_overhead_remote_walk():
    """Server-side walks (``POST /walk``) pay <= 10% for enabled telemetry."""
    backend = _make_backend()
    start = int(np.flatnonzero(backend.indptr[1:] - backend.indptr[:-1] > 0)[0])
    with serve_backend_async(backend) as server:

        def run():
            with HTTPGraphBackend(server.url, timeout=30.0) as client:
                for walk in range(REMOTE_WALKS):
                    client.remote_walk(
                        "srw", start, seed=SEED + walk, budget=REMOTE_BUDGET
                    )

        baseline_seconds, telemetry_seconds = _race(run, run)
    overhead = _record(
        "obs_overhead.remote_walk",
        baseline_seconds,
        telemetry_seconds,
        max_overhead=MAX_OVERHEAD,
        nodes=NUM_NODES,
        walks=REMOTE_WALKS,
        budget=REMOTE_BUDGET,
    )
    _assert_ratio(
        "obs_overhead.remote_walk", overhead, baseline_seconds, telemetry_seconds
    )


def test_obs_overhead_client_driven_fetches():
    """Per-request wire tracing costs under ``FETCH_BUDGET_US`` per fetch."""
    backend = _make_backend()
    server = serve_backend(backend).start()
    try:
        start = int(np.flatnonzero(backend.indptr[1:] - backend.indptr[:-1] > 0)[0])

        def run():
            with HTTPGraphBackend(server.url, timeout=10.0) as client:
                api = build_api(client, budget=REMOTE_BUDGET)
                walker = make_walker("srw", api=api, seed=SEED)
                walker.run(start, max_steps=None)

        base_times, obs_times = _race_samples(run, run, repeats=11)
    finally:
        server.close()
    baseline_seconds, telemetry_seconds = min(base_times), min(obs_times)
    # The budget stops the walk after exactly REMOTE_BUDGET unique fetches,
    # each of which is one traced wire request.  Loopback RTT drifts with
    # box load, so the delta comes from the median of adjacent off/on pairs
    # (each pair shares the same load regime) rather than min(on) - min(off),
    # whose two mins can land in different regimes.
    diffs = sorted(on - off for off, on in zip(base_times, obs_times))
    per_request_us = diffs[len(diffs) // 2] / REMOTE_BUDGET * 1e6
    _record(
        "obs_overhead.client_driven_fetches",
        baseline_seconds,
        telemetry_seconds,
        per_request_us=per_request_us,
        fetch_budget_us=FETCH_BUDGET_US,
        nodes=NUM_NODES,
        budget=REMOTE_BUDGET,
    )
    print(f"per traced request: {per_request_us:+.1f} us")
    if FETCH_BUDGET_US is not None:
        assert per_request_us <= FETCH_BUDGET_US, (
            f"client_driven_fetches: tracing a wire request costs "
            f"{per_request_us:.1f} us (off {baseline_seconds:.4f}s vs on "
            f"{telemetry_seconds:.4f}s over {REMOTE_BUDGET} requests); "
            f"the budget is {FETCH_BUDGET_US:.0f} us"
        )
