"""Figure 7: public benchmark graphs (Facebook, Youtube).

Figure 7(a-c) measures KL divergence, L2 distance and estimation error on the
Facebook graph for SRW, NB-SRW, CNRW and GNRW with budgets 20..140;
Figure 7(d) measures estimation error on Youtube for SRW, CNRW and GNRW with
budgets up to 1000.  The reproduction asserts that the history-aware walks
match or beat the baselines on every measure.
"""

from __future__ import annotations

from repro.experiments import figure7_facebook, figure7_youtube, render_comparison, render_report


def test_figure7_facebook_bias_measures(benchmark):
    report = benchmark.pedantic(
        figure7_facebook,
        kwargs={"seed": 0, "scale": 1.0, "trials": 30, "budgets": (20, 40, 60, 80, 100, 120, 140)},
        iterations=1,
        rounds=1,
    )
    print()
    print(render_report(report))
    error_table = report.get("relative_error")
    kl_table = report.get("kl_divergence")
    l2_table = report.get("l2_distance")
    print()
    print(render_comparison(error_table, baseline="SRW", challengers=["CNRW", "GNRW", "NB-SRW"]))
    # History-aware walks are competitive with (or better than) SRW on every
    # bias measure; the margin grows with the budget in the paper.
    assert error_table.dominates("CNRW", "SRW", tolerance=0.15)
    assert error_table.dominates("GNRW", "SRW", tolerance=0.15)
    assert kl_table.dominates("CNRW", "SRW", tolerance=0.15)
    assert l2_table.dominates("CNRW", "SRW", tolerance=0.15)


def test_figure7_youtube_estimation_error(benchmark):
    report = benchmark.pedantic(
        figure7_youtube,
        kwargs={"seed": 0, "scale": 1.0, "trials": 10, "budgets": (100, 250, 500, 750, 1000)},
        iterations=1,
        rounds=1,
    )
    print()
    print(render_report(report))
    table = report.get("relative_error")
    print()
    print(render_comparison(table, baseline="SRW", challengers=["CNRW", "GNRW"]))
    assert table.dominates("CNRW", "SRW", tolerance=0.15)
    # GNRW's degree grouping gains little on this sparse, weakly clustered
    # stand-in (see EXPERIMENTS.md); it must merely stay competitive with SRW.
    assert table.dominates("GNRW", "SRW", tolerance=0.30)
