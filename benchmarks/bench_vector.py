"""Benchmark: array-native VectorScheduler versus the scalar WalkScheduler.

The vector engine exists for exactly one reason: at ensemble scale the
scalar lockstep driver's per-walker Python kernel calls dominate the wall
clock, while a whole round of SRW transitions over a CSR graph is a handful
of numpy gathers.  This benchmark pins that claim: a 1000-walker SRW
ensemble on a >= 100k-node CSR-backed graph must run at least **10x**
faster through :class:`~repro.engine.vector.VectorScheduler` than through
the scalar :class:`~repro.engine.scheduler.WalkScheduler` over an identical
fresh stack.  The MHRW / NB-SRW / CNRW ratios are recorded in the JSON
payload without a floor (NB-SRW flattens the frontier rows each round and
CNRW keeps per-walker circulation history, so their margins are real but
workload-shaped).

The two engines are different seed lineages — the comparison is throughput
of the same workload shape, not path parity (the scalar goldens stay the
conformance reference; the vector lineage pins its own in
``tests/test_vector_engine.py``).  What *is* asserted here: the vector runs
are bit-identical across repeated runs and across process fan-out under a
fixed seed, and the billing invariant (``unique == total`` on a fresh
memoised stack) holds for both engines.

Set ``REPRO_BENCH_SCALE`` < 1 (e.g. 0.25) for a quick smoke run.
"""

from __future__ import annotations

import gc
import statistics
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.api import CSRBackend, build_api
from repro.engine import VectorScheduler, WalkScheduler
from repro.rng import derive_seed
from repro.walks import make_walker

from conftest import bench_scale, record_bench_result

#: Graph size: 100k nodes at the default scale (the acceptance target).
NUM_NODES = max(10_000, int(100_000 * bench_scale()))
OUT_DEGREE = 8
WALKERS = 1000
STEPS = 200
SEED = 0
#: Required vector-over-scalar speedup for the SRW ensemble.  The bar
#: applies at the 100k-node target scale only; reduced-scale smoke runs
#: (REPRO_BENCH_SCALE < 1) record the ratio without asserting it — tiny
#: graphs sit entirely in cache and the race is CI noise, not signal.
REQUIRED_SPEEDUP = 10.0 if NUM_NODES >= 100_000 else None
#: Interleaved timing repetitions for the asserted SRW race (medians are
#: compared, so a transient CPU-contention burst cannot flip the verdict).
TIMING_REPEATS = 5
#: Repetitions for the ratio-only kernels (recorded, never asserted).
RATIO_REPEATS = 3
RATIO_KERNELS = ("mhrw", "nbsrw", "cnrw")


def _synthetic_edges(num_nodes: int, out_degree: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    sources = np.repeat(np.arange(num_nodes, dtype=np.int64), out_degree)
    targets = rng.integers(0, num_nodes, size=sources.size, dtype=np.int64)
    return np.stack([sources, targets], axis=1)


def _make_backend() -> CSRBackend:
    edges = _synthetic_edges(NUM_NODES, OUT_DEGREE)
    return CSRBackend.from_edges(edges, num_nodes=NUM_NODES, name="synthetic-csr")


@pytest.fixture(scope="module")
def csr_backend() -> CSRBackend:
    return _make_backend()


@pytest.fixture(scope="module")
def starts(csr_backend):
    """Distinct non-isolated start nodes, one per walker."""
    rng = np.random.default_rng(SEED)
    indptr = csr_backend.indptr
    degrees = indptr[1:] - indptr[:-1]
    eligible = np.flatnonzero(degrees > 0)
    chosen = rng.choice(eligible, size=WALKERS, replace=False)
    return [int(node) for node in chosen]


def _scalar_ensemble(backend, start_nodes, kernel_name):
    """Baseline: the scalar lockstep scheduler over a fresh stack."""
    api = build_api(backend)
    walkers = [
        make_walker(kernel_name, api=api, seed=derive_seed(SEED, index))
        for index in range(len(start_nodes))
    ]
    results = WalkScheduler(api).run(walkers, start_nodes, steps=STEPS)
    return results, api.unique_queries, api.total_queries


def _vector_ensemble(backend, start_nodes, kernel_name):
    """Contender: the array-native driver over an identical fresh stack."""
    api = build_api(backend)
    result = VectorScheduler(api).run(kernel_name, start_nodes, steps=STEPS, seed=SEED)
    return result, api.unique_queries, api.total_queries


def _timed(function, *args):
    # Collector pauses land on whichever contender is running; park the GC
    # outside the timed section so the comparison stays fair.
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        result = function(*args)
        return time.perf_counter() - started, result
    finally:
        gc.enable()


def _race(backend, start_nodes, kernel_name, repeats):
    """Interleaved medians of scalar vs vector for one kernel."""
    scalar_times, vector_times = [], []
    scalar_out = vector_out = None
    for _ in range(repeats):
        seconds, scalar_out = _timed(_scalar_ensemble, backend, start_nodes, kernel_name)
        scalar_times.append(seconds)
        seconds, vector_out = _timed(_vector_ensemble, backend, start_nodes, kernel_name)
        vector_times.append(seconds)
    scalar_seconds = statistics.median(scalar_times)
    vector_seconds = statistics.median(vector_times)
    return scalar_seconds, vector_seconds, scalar_out, vector_out


def _fanout_fingerprint(seed: int) -> int:
    """Worker-side SRW fingerprint (fresh backend, fresh stack, same seed)."""
    backend = _make_backend()
    rng = np.random.default_rng(SEED)
    indptr = backend.indptr
    degrees = indptr[1:] - indptr[:-1]
    eligible = np.flatnonzero(degrees > 0)
    start_nodes = [int(node) for node in rng.choice(eligible, size=WALKERS, replace=False)]
    result, _, _ = _vector_ensemble(backend, start_nodes, "srw")
    del seed  # one task per submitted seed; the workload itself is fixed
    return result.fingerprint()


def test_bench_scalar_srw_ensemble(benchmark, csr_backend, starts):
    results, _, _ = benchmark(_scalar_ensemble, csr_backend, starts, "srw")
    assert all(result.steps == STEPS for result in results)


def test_bench_vector_srw_ensemble(benchmark, csr_backend, starts):
    result, _, _ = benchmark(_vector_ensemble, csr_backend, starts, "srw")
    assert result.steps == STEPS


def test_vector_srw_beats_scalar_by_10x(csr_backend, starts):
    """Acceptance check: the vector engine wins the SRW race >= 10x at scale.

    Both contenders advance 1000 walkers for the same number of steps over
    identical fresh memoised stacks; the vector runs must also be
    bit-identical across repetitions and both engines must satisfy the
    fresh-stack billing invariant.
    """
    assert NUM_NODES >= 10_000

    scalar_seconds, vector_seconds, scalar_out, vector_out = _race(
        csr_backend, starts, "srw", TIMING_REPEATS
    )
    speedup = scalar_seconds / vector_seconds

    # Determinism across the repeated runs: one more fresh run fingerprints
    # identically to the last timed one.
    result, unique, total = vector_out
    rerun, _, _ = _vector_ensemble(csr_backend, starts, "srw")
    assert rerun.fingerprint() == result.fingerprint()

    # Fresh-stack billing invariant for both engines.
    assert unique == total == len(np.unique(result.paths))
    scalar_results, scalar_unique, scalar_total = scalar_out
    assert scalar_unique == scalar_total
    assert all(r.steps == STEPS for r in scalar_results)

    print(
        f"\n{WALKERS}x srw x {STEPS} steps on {NUM_NODES} nodes: "
        f"scalar {scalar_seconds * 1e3:.1f} ms, vector "
        f"{vector_seconds * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    record_bench_result(
        "engine.vector_vs_scalar_srw",
        nodes=NUM_NODES,
        walkers=WALKERS,
        steps=STEPS,
        scalar_seconds=scalar_seconds,
        vector_seconds=vector_seconds,
        speedup=speedup,
        required_speedup=REQUIRED_SPEEDUP,
    )
    if REQUIRED_SPEEDUP is not None:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"expected the vector engine to be >= {REQUIRED_SPEEDUP}x faster than "
            f"the scalar scheduler for the {WALKERS}-walker SRW ensemble "
            f"(scalar {scalar_seconds:.3f}s vs vector {vector_seconds:.3f}s "
            f"= {speedup:.2f}x)"
        )


@pytest.mark.parametrize("kernel_name", RATIO_KERNELS)
def test_record_kernel_speedup_ratio(csr_backend, starts, kernel_name):
    """Record (never assert) the vector-over-scalar ratio per kernel.

    MHRW vectorises as cleanly as SRW; NB-SRW pays a flattened-row scan per
    round and CNRW a per-walker history pass, so their ratios are the honest
    measure of how far the partial vectorisation carries.
    """
    scalar_seconds, vector_seconds, _, vector_out = _race(
        csr_backend, starts, kernel_name, RATIO_REPEATS
    )
    speedup = scalar_seconds / vector_seconds
    result, unique, total = vector_out
    assert result.steps == STEPS
    assert unique == total  # fresh memoised stack
    print(
        f"\n{WALKERS}x {kernel_name} x {STEPS} steps on {NUM_NODES} nodes: "
        f"scalar {scalar_seconds * 1e3:.1f} ms, vector "
        f"{vector_seconds * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    record_bench_result(
        f"engine.vector_vs_scalar_{kernel_name}",
        nodes=NUM_NODES,
        walkers=WALKERS,
        steps=STEPS,
        scalar_seconds=scalar_seconds,
        vector_seconds=vector_seconds,
        speedup=speedup,
        required_speedup=None,
    )


def test_vector_fingerprint_stable_across_process_fanout(csr_backend, starts):
    """The same seeded vector run fingerprints identically in-process and in
    worker processes that rebuild the backend from scratch."""
    local, _, _ = _vector_ensemble(csr_backend, starts, "srw")
    with ProcessPoolExecutor(max_workers=2) as pool:
        remote = list(pool.map(_fanout_fingerprint, [1, 2]))
    assert remote == [local.fingerprint()] * 2
