"""Theorem 3 ablation: barbell bridge-crossing probability, CNRW vs SRW.

Theorem 3 lower-bounds the ratio of CNRW's and SRW's probabilities of crossing
the barbell bridge by |G1| ln|G1| / (|G1| - 1) > ln|G1|.  This benchmark
estimates the crossing probabilities empirically for several clique sizes and
checks the qualitative claim (CNRW crosses at least as readily as SRW, with
the gap growing on larger cliques where SRW is increasingly stuck).
"""

from __future__ import annotations

from repro.experiments import render_report, theorem3_escape


def test_theorem3_barbell_escape_probability(benchmark):
    report = benchmark.pedantic(
        theorem3_escape,
        kwargs={"seed": 0, "clique_sizes": (10, 20, 30, 40), "steps": 400, "trials": 120},
        iterations=1,
        rounds=1,
    )
    print()
    print(render_report(report))
    table = report.get("crossing_probability")
    srw = table.get("SRW").as_dict()
    cnrw = table.get("CNRW").as_dict()
    # CNRW's crossing probability is never materially below SRW's, and on
    # average over the size sweep it is at least as large.
    for size in srw:
        assert cnrw[size] >= srw[size] - 0.12
    assert table.mean_of("CNRW") >= table.mean_of("SRW") * 0.95
    # Crossing gets harder as the clique grows for the memoryless walk.
    sizes = sorted(srw)
    assert srw[sizes[-1]] <= srw[sizes[0]] + 0.05
