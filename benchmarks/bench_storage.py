"""Benchmark: on-disk CSR snapshots versus rebuilding, and mmap walk overhead.

The storage subsystem justifies itself on two numbers, both asserted here so
the claims are CI-checkable rather than anecdotal:

1. *Cold start.*  Opening a saved snapshot (``load_snapshot``, memory-mapped)
   must be >= 5x faster than rebuilding the same backend with
   ``CSRBackend.from_edges`` on a >= 100k-node graph — the mmap open reads two
   ``.npy`` headers and a manifest, the rebuild sorts and dedupes the whole
   edge list.
2. *Steady state.*  A batched 16-walker ensemble over the memory-mapped
   backend must stay within 1.3x of the same ensemble over the in-RAM
   :class:`~repro.api.backend.CSRBackend` — paging through the OS cache, not
   a slow path — while producing bit-identical walks.

Set ``REPRO_BENCH_SCALE`` < 1 (e.g. 0.25) for a quick smoke run.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import CSRBackend, build_api
from repro.engine import WalkScheduler
from repro.storage import MmapCSRBackend, load_snapshot, save_snapshot
from repro.walks import make_walker

from conftest import bench_scale, record_bench_result

#: Graph size: 100k nodes at the default scale (the acceptance target).
NUM_NODES = max(10_000, int(100_000 * bench_scale()))
OUT_DEGREE = 8
NUM_WALKERS = 16
WALK_STEPS = 256
#: Cold-start acceptance threshold: snapshot open vs from_edges rebuild.
MIN_COLD_START_SPEEDUP = 5.0
#: Steady-state acceptance threshold: mmap walk time vs in-RAM CSR.
MAX_WALK_SLOWDOWN = 1.3


def _synthetic_edges(num_nodes: int, out_degree: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    sources = np.repeat(np.arange(num_nodes, dtype=np.int64), out_degree)
    targets = rng.integers(0, num_nodes, size=sources.size, dtype=np.int64)
    return np.stack([sources, targets], axis=1)


def _best_of(function, *args, repeats=3):
    times = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function(*args)
        times.append(time.perf_counter() - started)
    return min(times), result


@pytest.fixture(scope="module")
def edges() -> np.ndarray:
    return _synthetic_edges(NUM_NODES, OUT_DEGREE)


@pytest.fixture(scope="module")
def csr_backend(edges) -> CSRBackend:
    return CSRBackend.from_edges(edges, num_nodes=NUM_NODES, name="synthetic-csr")


@pytest.fixture(scope="module")
def snapshot_dir(csr_backend, tmp_path_factory):
    return save_snapshot(csr_backend, tmp_path_factory.mktemp("bench") / "snap")


def _ensemble_walk(source):
    """One batched 16-walker ensemble; returns (paths, unique_queries)."""
    api = build_api(source)
    walkers = [make_walker("srw", api=api, seed=seed) for seed in range(NUM_WALKERS)]
    starts = [(seed * 7919) % NUM_NODES for seed in range(NUM_WALKERS)]
    results = WalkScheduler(api).run(walkers, starts, steps=WALK_STEPS)
    return [result.path for result in results], api.unique_queries


def test_bench_rebuild_from_edges(benchmark, edges):
    backend = benchmark(CSRBackend.from_edges, edges, NUM_NODES)
    assert len(backend) == NUM_NODES


def test_bench_snapshot_cold_open(benchmark, snapshot_dir):
    backend = benchmark(load_snapshot, snapshot_dir)
    assert len(backend) == NUM_NODES


def test_bench_mmap_ensemble_walk(benchmark, snapshot_dir):
    paths, unique = benchmark(_ensemble_walk, load_snapshot(snapshot_dir))
    assert len(paths) == NUM_WALKERS and unique > 0


def test_snapshot_open_beats_rebuild_5x(edges, snapshot_dir):
    """Acceptance check: mmap cold start >= 5x faster than from_edges."""
    assert NUM_NODES >= 10_000
    rebuild_seconds, rebuilt = _best_of(CSRBackend.from_edges, edges, NUM_NODES)
    open_seconds, opened = _best_of(load_snapshot, snapshot_dir)
    assert isinstance(opened, MmapCSRBackend)
    assert len(opened) == len(rebuilt) == NUM_NODES
    speedup = rebuild_seconds / open_seconds
    print(
        f"\ncold start over {NUM_NODES} nodes / {rebuilt.number_of_edges} edges: "
        f"from_edges {rebuild_seconds * 1e3:.1f} ms, load_snapshot "
        f"{open_seconds * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    record_bench_result(
        "storage.snapshot_open_vs_rebuild",
        nodes=NUM_NODES,
        rebuild_seconds=rebuild_seconds,
        open_seconds=open_seconds,
        speedup=speedup,
        required_speedup=MIN_COLD_START_SPEEDUP,
    )
    assert speedup >= MIN_COLD_START_SPEEDUP, (
        f"expected load_snapshot to open >= {MIN_COLD_START_SPEEDUP}x faster than "
        f"CSRBackend.from_edges (rebuild {rebuild_seconds:.4f}s vs open "
        f"{open_seconds:.4f}s, {speedup:.1f}x)"
    )


def test_mmap_walks_within_1_3x_of_ram_csr(csr_backend, snapshot_dir):
    """Acceptance check: batched walks over mmap stay within 1.3x of RAM CSR.

    Both ensembles use the same seeds and starts, so before comparing clocks
    the walks themselves must be bit-identical — storage may only change
    *where* the arrays live, never what the sampler sees.
    """
    mmap_backend = load_snapshot(snapshot_dir)
    ram_paths, ram_unique = _ensemble_walk(csr_backend)
    mmap_paths, mmap_unique = _ensemble_walk(mmap_backend)
    assert mmap_paths == ram_paths
    assert mmap_unique == ram_unique

    ram_seconds, _ = _best_of(_ensemble_walk, csr_backend)
    mmap_seconds, _ = _best_of(_ensemble_walk, mmap_backend)
    ratio = mmap_seconds / ram_seconds
    print(
        f"\n{NUM_WALKERS}-walker x {WALK_STEPS}-step ensemble over {NUM_NODES} "
        f"nodes: ram {ram_seconds * 1e3:.1f} ms, mmap {mmap_seconds * 1e3:.1f} ms "
        f"({ratio:.2f}x)"
    )
    record_bench_result(
        "storage.mmap_walk_vs_ram",
        nodes=NUM_NODES,
        walkers=NUM_WALKERS,
        steps=WALK_STEPS,
        ram_seconds=ram_seconds,
        mmap_seconds=mmap_seconds,
        ratio=ratio,
        max_ratio=MAX_WALK_SLOWDOWN,
    )
    assert ratio <= MAX_WALK_SLOWDOWN, (
        f"expected mmap ensemble within {MAX_WALK_SLOWDOWN}x of in-RAM CSR "
        f"(ram {ram_seconds:.3f}s vs mmap {mmap_seconds:.3f}s, {ratio:.2f}x)"
    )
