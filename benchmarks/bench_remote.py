"""Benchmark: batched remote fetches versus per-node GETs over a live server.

The remote access layer justifies its ``POST /nodes`` batch endpoint on one
number, asserted here so the claim stays CI-checkable: a 16-walker ensemble
driven through the batched :class:`~repro.engine.WalkScheduler` (one frontier
``POST /nodes`` per round) must beat the same 16 walks run sequentially (one
``GET /node/<id>`` per fresh step) by >= 2x wall clock — while producing
bit-identical paths, because batching may only change *how many requests*
cross the wire, never what any sampler sees.

The server is in-process (loopback), so the measured win is pure
per-request overhead amortisation — the effect only grows with real network
latency between machines.

Set ``REPRO_BENCH_SCALE`` < 1 (e.g. 0.25) for a quick smoke run.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import CSRBackend, HTTPGraphBackend, build_api
from repro.engine import WalkScheduler
from repro.server import serve_backend
from repro.walks import make_walker

from conftest import bench_scale, record_bench_result

#: Graph size: 20k nodes at the default scale.
NUM_NODES = max(4_000, int(20_000 * bench_scale()))
OUT_DEGREE = 8
NUM_WALKERS = 16
WALK_STEPS = max(16, int(64 * min(1.0, bench_scale())))
#: Acceptance threshold: batched POST /nodes vs per-node GET /node/<id>.
MIN_BATCH_SPEEDUP = 2.0


def _synthetic_edges(num_nodes: int, out_degree: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    sources = np.repeat(np.arange(num_nodes, dtype=np.int64), out_degree)
    targets = rng.integers(0, num_nodes, size=sources.size, dtype=np.int64)
    return np.stack([sources, targets], axis=1)


def _best_of(function, *args, repeats=3):
    times = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function(*args)
        times.append(time.perf_counter() - started)
    return min(times), result


@pytest.fixture(scope="module")
def server():
    backend = CSRBackend.from_edges(
        _synthetic_edges(NUM_NODES, OUT_DEGREE), num_nodes=NUM_NODES, name="remote-csr"
    )
    with serve_backend(backend) as live:
        yield live


def _walker_setup(url):
    client = HTTPGraphBackend(url)
    api = build_api(client)
    walkers = [make_walker("cnrw", api=api, seed=seed) for seed in range(NUM_WALKERS)]
    starts = [(seed * 7919) % NUM_NODES for seed in range(NUM_WALKERS)]
    return client, api, walkers, starts


def _batched_ensemble(url):
    """One scheduler round-trip: the frontier travels as POST /nodes batches."""
    client, api, walkers, starts = _walker_setup(url)
    try:
        results = WalkScheduler(api).run(walkers, starts, steps=WALK_STEPS)
        return [result.path for result in results], api.unique_queries
    finally:
        client.close()


def _sequential_walks(url):
    """The same 16 walks one after another: every fresh step is its own GET."""
    client, api, walkers, starts = _walker_setup(url)
    try:
        results = [
            walker.run(start, max_steps=WALK_STEPS)
            for walker, start in zip(walkers, starts)
        ]
        return [result.path for result in results], api.unique_queries
    finally:
        client.close()


def test_bench_batched_remote_ensemble(benchmark, server):
    paths, unique = benchmark(_batched_ensemble, server.url)
    assert len(paths) == NUM_WALKERS and unique > 0


def test_batched_posts_beat_per_node_gets_2x(server):
    """Acceptance check: batched POST /nodes >= 2x over per-node GETs."""
    batched_paths, batched_unique = _batched_ensemble(server.url)
    sequential_paths, sequential_unique = _sequential_walks(server.url)
    # Identical sampling first: batching must not change a single step.
    assert batched_paths == sequential_paths
    assert batched_unique == sequential_unique

    server.reset_stats()
    batched_seconds, _ = _best_of(_batched_ensemble, server.url)
    batched_requests = sum(server.endpoint_counts.values())
    server.reset_stats()
    sequential_seconds, _ = _best_of(_sequential_walks, server.url)
    sequential_requests = sum(server.endpoint_counts.values())
    speedup = sequential_seconds / batched_seconds
    print(
        f"\n{NUM_WALKERS}-walker x {WALK_STEPS}-step CNRW ensemble over "
        f"{NUM_NODES} nodes: sequential {sequential_seconds * 1e3:.1f} ms "
        f"({sequential_requests // 3} requests/run), batched "
        f"{batched_seconds * 1e3:.1f} ms ({batched_requests // 3} requests/run), "
        f"{speedup:.1f}x"
    )
    record_bench_result(
        "remote.batched_vs_per_node",
        nodes=NUM_NODES,
        walkers=NUM_WALKERS,
        steps=WALK_STEPS,
        sequential_seconds=sequential_seconds,
        batched_seconds=batched_seconds,
        sequential_requests=sequential_requests // 3,
        batched_requests=batched_requests // 3,
        speedup=speedup,
        required_speedup=MIN_BATCH_SPEEDUP,
    )
    assert batched_requests < sequential_requests
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"expected the batched scheduler to finish >= {MIN_BATCH_SPEEDUP}x faster "
        f"than sequential per-node fetches (sequential {sequential_seconds:.3f}s "
        f"vs batched {batched_seconds:.3f}s, {speedup:.2f}x)"
    )
