"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and prints the
series it produces (the same rows the paper reports) in addition to the
pytest-benchmark timing.  The scale/trial parameters are chosen so the whole
suite runs in a few minutes; set the environment variable ``REPRO_BENCH_SCALE``
to a float > 1 to run closer to paper scale.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

import pytest


def bench_scale(default: float = 1.0) -> float:
    """Return the global benchmark scale multiplier (REPRO_BENCH_SCALE)."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", default))
    except ValueError:
        return default


#: Results recorded by the acceptance benchmarks during this pytest session,
#: written out by ``--json PATH`` (see :func:`record_bench_result`).
_BENCH_RESULTS: List[Dict[str, Any]] = []


def record_bench_result(name: str, **fields: Any) -> None:
    """Record one machine-readable benchmark result.

    Every acceptance benchmark calls this with its headline numbers (the
    measured ratios it asserts on, plus the workload parameters).  When the
    run was started with ``--json PATH`` the collected results are written to
    ``PATH`` at session end, so CI can accumulate a ``BENCH_*.json``
    trajectory instead of parsing stdout.
    """
    entry: Dict[str, Any] = {"name": name, "scale": bench_scale()}
    entry.update(fields)
    _BENCH_RESULTS.append(entry)


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--json",
        dest="repro_bench_json",
        default=None,
        metavar="PATH",
        help="write machine-readable benchmark results (name, scale, measured "
        "ratios) to PATH as JSON at the end of the run",
    )


def _host_metadata() -> Dict[str, Any]:
    """The host facts needed to compare BENCH_*.json files across runs.

    Timing ratios only mean something relative to the machine that produced
    them, so the payload carries the cpu count, python build and platform
    alongside the results (additive to format version 1: older readers
    ignore the extra key).
    """
    import platform

    return {
        "cpu_count": os.cpu_count(),
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def pytest_sessionfinish(session, exitstatus) -> None:
    path = session.config.getoption("repro_bench_json", None)
    if not path:
        return
    payload = {
        "format": "repro-bench-results",
        "version": 1,
        "host": _host_metadata(),
        "results": _BENCH_RESULTS,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


def print_report(report) -> None:
    """Print an experiment report below the benchmark output."""
    from repro.experiments import render_report

    print()
    print(render_report(report))
