"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and prints the
series it produces (the same rows the paper reports) in addition to the
pytest-benchmark timing.  The scale/trial parameters are chosen so the whole
suite runs in a few minutes; set the environment variable ``REPRO_BENCH_SCALE``
to a float > 1 to run closer to paper scale.
"""

from __future__ import annotations

import os

import pytest


def bench_scale(default: float = 1.0) -> float:
    """Return the global benchmark scale multiplier (REPRO_BENCH_SCALE)."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


def print_report(report) -> None:
    """Print an experiment report below the benchmark output."""
    from repro.experiments import render_report

    print()
    print(render_report(report))
