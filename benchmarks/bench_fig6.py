"""Figure 6: average-degree estimation error on the Google-Plus-like graph.

The paper's headline comparison: MHRW, SRW, NB-SRW, CNRW and GNRW estimating
the average degree under query budgets from 200 to 1000.  The reproduction
asserts the qualitative result — CNRW and GNRW achieve lower error than SRW
and NB-SRW at equal query cost, and MHRW is clearly the worst — rather than
the paper's absolute error values.
"""

from __future__ import annotations

from repro.experiments import figure6, render_comparison, render_report


def test_figure6_googleplus_average_degree(benchmark):
    report = benchmark.pedantic(
        figure6,
        kwargs={"seed": 0, "scale": 0.3, "trials": 15, "budgets": (200, 400, 600, 800, 1000)},
        iterations=1,
        rounds=1,
    )
    print()
    print(render_report(report))
    table = report.get("relative_error")
    print()
    print(render_comparison(table, baseline="SRW", challengers=["CNRW", "GNRW", "NB-SRW", "MHRW"]))
    # Who wins: the history-aware walks match or beat the baselines on curve
    # means (the paper's margin is larger on the 240k-node crawl than on this
    # laptop-scale stand-in, but the ordering is preserved).
    assert table.dominates("CNRW", "SRW", tolerance=0.15)
    assert table.dominates("GNRW", "SRW", tolerance=0.15)
    # MHRW is far worse than every degree-proportional sampler (paper Sec 6.2).
    assert table.mean_of("MHRW") > table.mean_of("SRW")
    assert table.mean_of("MHRW") > table.mean_of("CNRW")
