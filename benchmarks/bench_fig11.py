"""Figure 11: barbell graphs of growing size.

The paper varies the barbell graph from 20 to 56 nodes (clique sizes 10 to 28)
and reports KL divergence, L2 distance and estimation error at a fixed budget
for SRW, CNRW and GNRW.  The history-aware walks stay ahead of SRW across the
whole size range.
"""

from __future__ import annotations

from repro.experiments import figure11, render_comparison, render_report


def test_figure11_barbell_size_sweep(benchmark):
    report = benchmark.pedantic(
        figure11,
        kwargs={"seed": 0, "sizes": (10, 14, 18, 22, 26), "budget": 80, "trials": 15},
        iterations=1,
        rounds=1,
    )
    print()
    print(render_report(report))
    error_table = report.get("relative_error")
    kl_table = report.get("kl_divergence")
    print()
    print(render_comparison(error_table, baseline="SRW", challengers=["CNRW", "GNRW"]))
    assert error_table.dominates("CNRW", "SRW", tolerance=0.15)
    assert error_table.dominates("GNRW", "SRW", tolerance=0.15)
    assert kl_table.dominates("CNRW", "SRW", tolerance=0.15)
