"""Table 1: dataset summary statistics.

Regenerates the paper's Table 1 (nodes, edges, average degree, average
clustering coefficient, triangles) for every experiment dataset.  Absolute
sizes differ from the paper because the real crawls are replaced by synthetic
stand-ins (see DESIGN.md), but the structural regime of each row — dense and
clustered for Facebook/Google Plus, sparse for Youtube, near-1.0 clustering
for the synthetic graphs — is preserved.
"""

from __future__ import annotations

from repro.experiments import render_dataset_summaries, table1


def test_table1_dataset_summaries(benchmark):
    summaries = benchmark(table1, seed=0, scale=0.5)
    print()
    print("Table 1: summary of the datasets")
    print(render_dataset_summaries(summaries))
    by_name = {summary.name: summary for summary in summaries}
    # Qualitative shape checks mirroring the paper's table.
    assert by_name["clustered"].average_clustering > 0.9
    assert by_name["barbell"].average_clustering > 0.9
    assert by_name["googleplus_like"].average_degree > by_name["youtube_like"].average_degree
    assert by_name["facebook_like"].average_clustering > by_name["youtube_like"].average_clustering
