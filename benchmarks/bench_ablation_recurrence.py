"""Ablation: edge-based vs node-based recurrence for CNRW (paper Section 3.2).

The paper chose the edge-based circulation rule and states that experiments
(omitted for space) confirmed its superiority over the node-based variant.
This benchmark regenerates that comparison on the clustered graph and also
includes NB-CNRW, the Section 5 extension that composes circulation with the
non-backtracking rule.
"""

from __future__ import annotations

from repro.experiments import ablation_recurrence, render_comparison, render_report


def test_ablation_edge_vs_node_recurrence(benchmark):
    report = benchmark.pedantic(
        ablation_recurrence,
        kwargs={"seed": 0, "scale": 1.0, "trials": 12, "budgets": (20, 40, 60, 80, 100, 120, 140)},
        iterations=1,
        rounds=1,
    )
    print()
    print(render_report(report))
    error_table = report.get("relative_error")
    print()
    print(
        render_comparison(
            error_table, baseline="SRW", challengers=["CNRW-edge", "CNRW-node", "NB-CNRW"]
        )
    )
    # Both circulation variants improve on (or match) SRW, as does NB-CNRW.
    # The paper states the edge-based rule beats the node-based one on its
    # real crawls (data omitted there); on this 90-node clustered graph the
    # node-based variant accumulates history faster and is at least as good,
    # so the benchmark only asserts that neither variant loses to the
    # baseline — see EXPERIMENTS.md for the measured comparison.
    assert error_table.dominates("CNRW-edge", "SRW", tolerance=0.15)
    assert error_table.dominates("CNRW-node", "SRW", tolerance=0.15)
    assert error_table.dominates("NB-CNRW", "SRW", tolerance=0.15)
