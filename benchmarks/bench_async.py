"""Benchmark: the asyncio frontend's two wins over the threaded server.

The async service tier (:mod:`repro.server.aio`) justifies itself on two
numbers, both asserted here so the claims stay CI-checkable:

1. **Server-side walks collapse round trips.**  A client-driven walk pays
   one ``GET /node/<id>`` per fresh node (O(budget) round trips); one
   ``POST /walk`` runs the whole walk next to the data and ships back the
   path (O(1)).  The collapse must be >= 5x — and the path must be
   bit-identical, because moving the walk server-side may only change *where*
   the kernel runs, never what it samples.
2. **One event loop beats a thread per connection.**  32 concurrent
   keep-alive clients hammering ``GET /node/<id>`` must see >= 1.5x the
   aggregate throughput from the asyncio frontend (lean parser, no
   per-connection thread) than from the threaded one.  The ratio is asserted
   at the default scale only; reduced-scale smoke runs (``REPRO_BENCH_SCALE``
   < 1) record it without asserting — tiny request counts make the race
   CI noise, not signal.

The servers are in-process (loopback), so both effects only grow with real
network latency between machines.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.api import (
    AsyncHTTPGraphBackend,
    CSRBackend,
    HTTPGraphBackend,
    build_api,
)
from repro.server import serve_backend, serve_backend_async
from repro.walks import make_walker

from conftest import bench_scale, record_bench_result

#: Graph size: 20k nodes at the default scale.
NUM_NODES = max(4_000, int(20_000 * bench_scale()))
OUT_DEGREE = 8
#: Unique-node budget for the round-trip race (the walk the paper actually
#: buys: a budget-bounded crawl).
WALK_BUDGET = max(30, int(60 * min(1.0, bench_scale())))
WALK_KERNEL = "cnrw"
WALK_SEED = 7
#: Concurrency for the throughput race.
NUM_CONNECTIONS = 32
REQUESTS_PER_CONNECTION = max(10, int(40 * min(1.0, bench_scale())))
#: Acceptance thresholds.
MIN_ROUND_TRIP_COLLAPSE = 5.0
#: Calibrated locally at ~10x on loopback; asserted at full scale only.
MIN_THROUGHPUT_RATIO = 1.5 if NUM_NODES >= 20_000 else None
TIMING_REPEATS = 3


def _synthetic_edges(num_nodes: int, out_degree: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    sources = np.repeat(np.arange(num_nodes, dtype=np.int64), out_degree)
    targets = rng.integers(0, num_nodes, size=sources.size, dtype=np.int64)
    return np.stack([sources, targets], axis=1)


def _best_of(function, *args, repeats=TIMING_REPEATS):
    times = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function(*args)
        times.append(time.perf_counter() - started)
    return min(times), result


@pytest.fixture(scope="module")
def graph_backend():
    return CSRBackend.from_edges(
        _synthetic_edges(NUM_NODES, OUT_DEGREE), num_nodes=NUM_NODES, name="aio-csr"
    )


@pytest.fixture(scope="module")
def async_server(graph_backend):
    with serve_backend_async(graph_backend).start() as live:
        yield live


# ----------------------------------------------------------------------
# Claim 1: POST /walk collapses round trips >= 5x
# ----------------------------------------------------------------------
def _client_driven_walk(url):
    """Drive the kernel from the client: one GET /node per fresh node."""
    with AsyncHTTPGraphBackend(url, timeout=30.0) as client:
        api = build_api(client, budget=WALK_BUDGET)
        walker = make_walker(WALK_KERNEL, api=api, seed=WALK_SEED)
        return walker.run(0).path


def _server_side_walk(url):
    """One POST /walk: the kernel runs next to the data."""
    with AsyncHTTPGraphBackend(url, timeout=30.0) as client:
        return client.remote_walk(
            WALK_KERNEL, 0, seed=WALK_SEED, budget=WALK_BUDGET
        )["path"]


def test_bench_server_side_walk(benchmark, async_server):
    path = benchmark(_server_side_walk, async_server.url)
    assert len(path) > 1


def test_server_side_walk_collapses_round_trips_5x(async_server):
    """Acceptance check: POST /walk >= 5x fewer round trips, bit-identical."""
    # Identical sampling first: the relocation must not change a single step.
    client_path = _client_driven_walk(async_server.url)
    server_path = _server_side_walk(async_server.url)
    assert server_path == client_path

    async_server.reset_stats()
    client_seconds, _ = _best_of(_client_driven_walk, async_server.url)
    client_requests = sum(async_server.endpoint_counts.values()) // TIMING_REPEATS
    async_server.reset_stats()
    server_seconds, _ = _best_of(_server_side_walk, async_server.url)
    server_requests = sum(async_server.endpoint_counts.values()) // TIMING_REPEATS
    collapse = client_requests / server_requests
    print(
        f"\n{WALK_KERNEL} walk, budget {WALK_BUDGET}, over {NUM_NODES} nodes: "
        f"client-driven {client_requests} round trips "
        f"({client_seconds * 1e3:.1f} ms), server-side {server_requests} "
        f"({server_seconds * 1e3:.1f} ms), {collapse:.0f}x fewer"
    )
    record_bench_result(
        "async.walk_round_trip_collapse",
        nodes=NUM_NODES,
        kernel=WALK_KERNEL,
        budget=WALK_BUDGET,
        client_requests=client_requests,
        server_requests=server_requests,
        client_seconds=client_seconds,
        server_seconds=server_seconds,
        collapse=collapse,
        required_collapse=MIN_ROUND_TRIP_COLLAPSE,
    )
    assert collapse >= MIN_ROUND_TRIP_COLLAPSE, (
        f"expected POST /walk to cut round trips >= {MIN_ROUND_TRIP_COLLAPSE}x "
        f"(client-driven {client_requests} vs server-side {server_requests} "
        f"= {collapse:.1f}x)"
    )


# ----------------------------------------------------------------------
# Claim 2: async frontend >= 1.5x threaded at 32 connections
# ----------------------------------------------------------------------
def _throughput(url):
    """Aggregate req/s: 32 keep-alive clients fetching nodes concurrently."""
    barrier = threading.Barrier(NUM_CONNECTIONS + 1)
    errors = []

    def worker(index):
        try:
            with HTTPGraphBackend(url, timeout=30.0) as client:
                barrier.wait()
                for i in range(REQUESTS_PER_CONNECTION):
                    client.fetch((index * 7919 + i * 104729) % NUM_NODES)
        except Exception as error:  # pragma: no cover - diagnostics only
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(NUM_CONNECTIONS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return NUM_CONNECTIONS * REQUESTS_PER_CONNECTION / elapsed


def test_async_frontend_beats_threaded_at_32_connections(graph_backend):
    """Acceptance check: one event loop >= 1.5x a thread per connection."""
    with serve_backend(graph_backend) as threaded:
        threaded_rps = max(_throughput(threaded.url) for _ in range(TIMING_REPEATS))
    with serve_backend_async(graph_backend).start() as aio:
        async_rps = max(_throughput(aio.url) for _ in range(TIMING_REPEATS))
    ratio = async_rps / threaded_rps
    print(
        f"\n{NUM_CONNECTIONS} connections x {REQUESTS_PER_CONNECTION} requests "
        f"over {NUM_NODES} nodes: threaded {threaded_rps:.0f} req/s, "
        f"async {async_rps:.0f} req/s ({ratio:.1f}x)"
    )
    record_bench_result(
        "async.throughput_vs_threaded",
        nodes=NUM_NODES,
        connections=NUM_CONNECTIONS,
        requests_per_connection=REQUESTS_PER_CONNECTION,
        threaded_rps=threaded_rps,
        async_rps=async_rps,
        ratio=ratio,
        required_ratio=MIN_THROUGHPUT_RATIO,
    )
    if MIN_THROUGHPUT_RATIO is not None:
        assert ratio >= MIN_THROUGHPUT_RATIO, (
            f"expected the asyncio frontend to serve >= {MIN_THROUGHPUT_RATIO}x "
            f"the threaded frontend's throughput at {NUM_CONNECTIONS} "
            f"connections (threaded {threaded_rps:.0f} req/s vs async "
            f"{async_rps:.0f} req/s = {ratio:.2f}x)"
        )
