"""Figure 8: sampling distributions of SRW, CNRW and GNRW vs theoretical pi.

The paper runs 100 walks of 10,000 steps on two Facebook ego networks and
shows that the empirical visit distributions of all three walkers coincide
with pi(v) = deg(v)/2|E| (nodes ordered by degree).  The reproduction runs a
scaled-down version and asserts that every walker's distribution is close to
the theoretical one (total variation / L2), i.e. Theorem 1 and Theorem 4 hold
empirically.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure8, render_report
from repro.metrics import Distribution, l2_distance, total_variation_distance


def test_figure8_sampling_distribution(benchmark):
    report = benchmark.pedantic(
        figure8,
        kwargs={"seed": 0, "scale": 0.3, "num_walks": 12, "steps": 2500},
        iterations=1,
        rounds=1,
    )
    table = report.get("distribution")
    print()
    print("Figure 8: distance of each sampler's distribution from theoretical pi")
    theoretical = table.get("Theoretical")
    support = list(range(len(theoretical.y)))
    theo = Distribution({rank: max(probability, 1e-12) for rank, probability in zip(support, theoretical.y)})
    for label in table.labels():
        if label == "Theoretical":
            continue
        series = table.get(label)
        empirical = Distribution({rank: max(probability, 1e-12) for rank, probability in zip(support, series.y)})
        tv = total_variation_distance(theo, empirical, support=support)
        l2 = l2_distance(theo, empirical, support=support)
        print(f"  {label:>6s}: total variation = {tv:.4f}, L2 = {l2:.4f}")
        # Every walker converges to the same stationary distribution.
        assert tv < 0.12
    # The distributions are ordered by degree, so the theoretical series must
    # be (weakly) increasing with node rank.
    assert np.all(np.diff(theoretical.y) >= -1e-12)
    print()
    print(render_report(report).split("\n\n")[0])
