"""Benchmark: access-layer middleware overhead and batched-query speedup.

The access-layer redesign splits the monolithic ``GraphAPI`` into a backend
plus a middleware stack.  This benchmark answers the two questions that
justify the split:

1. *What does the stack cost?*  Per-query overhead of the full canonical
   stack versus a bare ``BackendAPI``, measured on cache hits (the common
   case for a walking sampler).
2. *What does it buy?*  Throughput of the legacy single-query path
   (``GraphAPI.query`` in a loop) versus the array-based
   :class:`~repro.api.backend.CSRBackend` driven through batched
   ``query_many`` calls, on a >= 100k-node synthetic graph.

``test_csr_batched_beats_legacy_single_query`` asserts the speedup directly,
so the claim is CI-checkable rather than anecdotal.  Set
``REPRO_BENCH_SCALE`` < 1 (e.g. 0.1) for a quick smoke run.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import CSRBackend, GraphAPI, build_api
from repro.graphs import Graph

from conftest import bench_scale

#: Graph size: 100k nodes at the default scale (the acceptance target).
NUM_NODES = max(10_000, int(100_000 * bench_scale()))
OUT_DEGREE = 8
BATCH_SIZE = 1024
#: How many distinct nodes each fresh-query sweep touches.
SWEEP_NODES = NUM_NODES // 2


def _synthetic_edges(num_nodes: int, out_degree: int, seed: int = 0) -> np.ndarray:
    """Random directed pairs (deduped and mirrored by the consumers)."""
    rng = np.random.default_rng(seed)
    sources = np.repeat(np.arange(num_nodes, dtype=np.int64), out_degree)
    targets = rng.integers(0, num_nodes, size=sources.size, dtype=np.int64)
    return np.stack([sources, targets], axis=1)


@pytest.fixture(scope="module")
def edges() -> np.ndarray:
    return _synthetic_edges(NUM_NODES, OUT_DEGREE)


@pytest.fixture(scope="module")
def big_graph(edges) -> Graph:
    graph = Graph(name=f"synthetic-{NUM_NODES}")
    for u, v in edges.tolist():
        if u != v:
            graph.add_edge(u, v)
    return graph


@pytest.fixture(scope="module")
def csr_backend(edges) -> CSRBackend:
    return CSRBackend.from_edges(edges, num_nodes=NUM_NODES, name="synthetic-csr")


@pytest.fixture(scope="module")
def sweep(big_graph):
    """Distinct node ids with degree >= 1, shared by every contender."""
    nodes = [node for node in big_graph.nodes() if big_graph.degree(node) > 0]
    return nodes[:SWEEP_NODES]


def _legacy_sweep(graph, nodes):
    api = GraphAPI(graph)
    query = api.query
    for node in nodes:
        query(node)
    return api.unique_queries


def _csr_batched_sweep(backend, nodes):
    api = build_api(backend)
    query_many = api.query_many
    for index in range(0, len(nodes), BATCH_SIZE):
        query_many(nodes[index:index + BATCH_SIZE])
    return api.unique_queries


def test_bench_legacy_single_query(benchmark, big_graph, sweep):
    unique = benchmark(_legacy_sweep, big_graph, sweep)
    assert unique == len(sweep)


def test_bench_csr_batched_query_many(benchmark, csr_backend, sweep):
    unique = benchmark(_csr_batched_sweep, csr_backend, sweep)
    assert unique == len(sweep)


def test_bench_stack_cache_hit_overhead(benchmark, big_graph):
    """Per-query cost of a cache hit through the full canonical stack."""
    from repro.api import twitter_policy

    api = build_api(big_graph, budget=10, rate_limit=twitter_policy())
    api.query(0)

    def hit_many():
        query = api.query
        for _ in range(10_000):
            query(0)
        return api.total_queries

    total = benchmark(hit_many)
    assert total >= 10_000


def test_bench_bare_backend_cache_hit(benchmark, big_graph):
    """Baseline for the overhead benchmark: cache layer over the backend only."""
    api = build_api(big_graph)
    api.query(0)

    def hit_many():
        query = api.query
        for _ in range(10_000):
            query(0)
        return api.total_queries

    total = benchmark(hit_many)
    assert total >= 10_000


def test_csr_batched_beats_legacy_single_query(big_graph, csr_backend, sweep):
    """Acceptance check: CSR + query_many outruns the legacy per-query path.

    Both contenders issue the same fresh unique queries over the same >=100k
    node graph; best-of-three wall-clock times are compared.
    """
    assert NUM_NODES >= 10_000
    assert len(sweep) >= NUM_NODES // 4

    def best_of(function, *args, repeats=3):
        times = []
        for _ in range(repeats):
            started = time.perf_counter()
            result = function(*args)
            times.append(time.perf_counter() - started)
            assert result == len(sweep)
        return min(times)

    legacy_seconds = best_of(_legacy_sweep, big_graph, sweep)
    batched_seconds = best_of(_csr_batched_sweep, csr_backend, sweep)
    speedup = legacy_seconds / batched_seconds
    print(
        f"\nfresh sweep over {len(sweep)} of {NUM_NODES} nodes: "
        f"legacy {legacy_seconds * 1e3:.1f} ms, csr+query_many "
        f"{batched_seconds * 1e3:.1f} ms ({speedup:.2f}x)"
    )
    assert batched_seconds < legacy_seconds, (
        f"expected the batched CSR path to beat the legacy single-query path "
        f"(legacy {legacy_seconds:.3f}s vs batched {batched_seconds:.3f}s)"
    )
