"""Benchmark: a consistent-hashed shard tier versus one graph server.

The sharded tier justifies itself on three claims, all asserted here so they
stay CI-checkable:

1. *No sampling drift.*  For **every** kernel in the conformance suite, a
   walk over the 3-shard cluster is bit-identical to the same walk over a
   single server and over the local backend — partitioning may only change
   *where* a neighborhood is fetched from, never what any sampler sees.
2. *Bounded fan-out overhead.*  A 16-walker CNRW ensemble driven through the
   batched :class:`~repro.engine.WalkScheduler` over 3 loopback shard
   *processes* must stay within 1.5x of the same ensemble against a single
   server: each frontier batch splits into per-shard ``POST /nodes``
   sub-batches pipelined over the keep-alive connections (all requests in
   flight before the first response is read), so the shard servers work
   concurrently and the extra hops amortise instead of tripling the wall
   clock.
3. *Replication is (nearly) free on the read path.*  The same ensemble over
   a replication-factor-2 layout must stay within the same bound of the
   unreplicated cluster — the round-robin replica rotation only changes
   which shard answers, not how many requests are made — and a shard
   SIGKILLed mid-ensemble must be absorbed by failover with bit-identical
   paths.

The shard servers are real ``repro.cli serve`` subprocesses (as in
production), so their request handling genuinely overlaps on a multi-core
host.  On a host without enough cores to run the client and all three
shards concurrently the fan-out physically serialises — there the walks
must still be bit-identical, but the wall-clock bound relaxes to the
serialised budget (mirroring ``bench_engine``'s reduced-scale policy: a
bound the hardware cannot express is noise, not signal).

Set ``REPRO_BENCH_SCALE`` < 1 (e.g. 0.25) for a quick smoke run.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.api import CSRBackend, HTTPGraphBackend, build_api
from repro.cluster import HashRing, ShardedBackend, partition_snapshot
from repro.engine import WalkScheduler
from repro.storage import save_snapshot
from repro.walks import make_walker

from conftest import bench_scale, record_bench_result

#: Graph size: 20k nodes at the default scale.
NUM_NODES = max(4_000, int(20_000 * bench_scale()))
OUT_DEGREE = 8
NUM_SHARDS = 3
NUM_WALKERS = 16
WALK_STEPS = max(16, int(64 * min(1.0, bench_scale())))
#: Steps for the per-kernel parity walks (metadata-peeking kernels pay one
#: /meta request per distinct neighbor, so these stay short).
KERNEL_STEPS = 48
#: Acceptance threshold: sharded ensemble wall clock vs single server, when
#: the host can actually run the client and every shard concurrently.
MAX_CLUSTER_SLOWDOWN = 1.5
#: Fallback bound on a host that serialises the fan-out (fewer cores than
#: client + shards): three sequential hops plus dispatch must still beat
#: three times the single-server round.
MAX_SERIALIZED_SLOWDOWN = 3.0
_CONCURRENT_HOST = (os.cpu_count() or 1) >= NUM_SHARDS + 1
REQUIRED_MAX_RATIO = MAX_CLUSTER_SLOWDOWN if _CONCURRENT_HOST else MAX_SERIALIZED_SLOWDOWN
#: Every kernel of the conformance suite must walk the cluster identically.
KERNEL_NAMES = ("srw", "mhrw", "nbsrw", "cnrw", "nbcnrw", "gnrw_by_degree")


def _synthetic_edges(num_nodes: int, out_degree: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    sources = np.repeat(np.arange(num_nodes, dtype=np.int64), out_degree)
    targets = rng.integers(0, num_nodes, size=sources.size, dtype=np.int64)
    return np.stack([sources, targets], axis=1)


def _best_of(function, *args, repeats=3):
    times = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function(*args)
        times.append(time.perf_counter() - started)
    return min(times), result


def _boot_serve(source) -> tuple:
    """Boot one ``repro.cli serve`` subprocess; returns (process, url)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--source", str(source),
         "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONUNBUFFERED": "1"},
    )
    banner = process.stdout.readline()
    match = re.search(r"at (http://[0-9.:]+)", banner)
    if not match:  # pragma: no cover - boot failure surface
        process.kill()
        raise RuntimeError(f"serve printed no URL: {banner!r}")
    return process, match.group(1)


@pytest.fixture(scope="module")
def local_backend() -> CSRBackend:
    return CSRBackend.from_edges(
        _synthetic_edges(NUM_NODES, OUT_DEGREE), num_nodes=NUM_NODES,
        name="cluster-csr",
    )


@pytest.fixture(scope="module")
def cluster_dir(local_backend, tmp_path_factory):
    base = tmp_path_factory.mktemp("cluster-bench")
    snapshot = save_snapshot(local_backend, base / "snap")
    partition_snapshot(snapshot, base / "cluster", NUM_SHARDS)
    return base


@pytest.fixture(scope="module")
def single_url(cluster_dir):
    process, url = _boot_serve(cluster_dir / "snap")
    yield url
    process.terminate()
    process.wait(timeout=30)


@pytest.fixture(scope="module")
def shard_urls(cluster_dir):
    booted = [
        _boot_serve(cluster_dir / "cluster" / f"shard-{shard:02d}")
        for shard in range(NUM_SHARDS)
    ]
    yield [url for _, url in booted]
    for process, _ in booted:
        process.terminate()
    for process, _ in booted:
        process.wait(timeout=30)


def _sharded_backend(cluster_dir, shard_urls) -> ShardedBackend:
    manifest = json.loads((cluster_dir / "cluster" / "cluster.json").read_text())
    ring = HashRing.from_spec(manifest["ring"])
    return ShardedBackend([HTTPGraphBackend(url) for url in shard_urls], ring)


def _ensemble(source):
    """One batched 16-walker CNRW ensemble; returns (paths, unique_queries)."""
    api = build_api(source)
    walkers = [make_walker("cnrw", api=api, seed=seed) for seed in range(NUM_WALKERS)]
    starts = [(seed * 7919) % NUM_NODES for seed in range(NUM_WALKERS)]
    results = WalkScheduler(api).run(walkers, starts, steps=WALK_STEPS)
    return [result.path for result in results], api.unique_queries


def _single_ensemble(url):
    with HTTPGraphBackend(url) as client:
        return _ensemble(client)


def _sharded_ensemble(cluster_dir, shard_urls):
    with _sharded_backend(cluster_dir, shard_urls) as cluster:
        return _ensemble(cluster)


def test_bench_sharded_ensemble(benchmark, cluster_dir, shard_urls):
    paths, unique = benchmark(_sharded_ensemble, cluster_dir, shard_urls)
    assert len(paths) == NUM_WALKERS and unique > 0


def test_every_kernel_identical_across_tiers(
    local_backend, single_url, cluster_dir, shard_urls
):
    """Local, single-server and sharded walks are bit-identical per kernel."""
    def run(source, kernel):
        api = build_api(source)
        result = make_walker(kernel, api=api, seed=11).run(3, max_steps=KERNEL_STEPS)
        return result.path, api.unique_queries, api.total_queries

    with HTTPGraphBackend(single_url) as single, \
            _sharded_backend(cluster_dir, shard_urls) as cluster:
        for kernel in KERNEL_NAMES:
            reference = run(local_backend, kernel)
            assert run(single, kernel) == reference, kernel
            assert run(cluster, kernel) == reference, kernel


def test_sharded_within_bound_of_single_server(cluster_dir, shard_urls, single_url):
    """Acceptance check: 3-shard fan-out stays within 1.5x of one server."""
    single_paths, single_unique = _single_ensemble(single_url)
    sharded_paths, sharded_unique = _sharded_ensemble(cluster_dir, shard_urls)
    # Identical sampling first: sharding must not change a single step.
    assert sharded_paths == single_paths
    assert sharded_unique == single_unique

    single_seconds, _ = _best_of(_single_ensemble, single_url)
    sharded_seconds, _ = _best_of(_sharded_ensemble, cluster_dir, shard_urls)
    ratio = sharded_seconds / single_seconds
    print(
        f"\n{NUM_WALKERS}-walker x {WALK_STEPS}-step CNRW ensemble over "
        f"{NUM_NODES} nodes: single server {single_seconds * 1e3:.1f} ms, "
        f"{NUM_SHARDS}-shard cluster {sharded_seconds * 1e3:.1f} ms "
        f"({ratio:.2f}x; {os.cpu_count()} cpus, bound {REQUIRED_MAX_RATIO}x)"
    )
    record_bench_result(
        "cluster.sharded_vs_single_server",
        nodes=NUM_NODES,
        shards=NUM_SHARDS,
        walkers=NUM_WALKERS,
        steps=WALK_STEPS,
        cpus=os.cpu_count(),
        single_seconds=single_seconds,
        sharded_seconds=sharded_seconds,
        ratio=ratio,
        max_ratio=REQUIRED_MAX_RATIO,
        concurrent_host=_CONCURRENT_HOST,
    )
    assert ratio <= REQUIRED_MAX_RATIO, (
        f"expected the {NUM_SHARDS}-shard ensemble within {REQUIRED_MAX_RATIO}x "
        f"of the single server (single {single_seconds:.3f}s vs sharded "
        f"{sharded_seconds:.3f}s, {ratio:.2f}x)"
    )


# ----------------------------------------------------------------------
# Replicated tier: fan-out overhead and mid-ensemble failover
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def replicated_dir(local_backend, tmp_path_factory):
    base = tmp_path_factory.mktemp("cluster-bench-replicated")
    snapshot = save_snapshot(local_backend, base / "snap")
    partition_snapshot(snapshot, base / "cluster", NUM_SHARDS, replicas=2)
    return base


@pytest.fixture(scope="module")
def replicated_urls(replicated_dir):
    booted = [
        _boot_serve(replicated_dir / "cluster" / f"shard-{shard:02d}")
        for shard in range(NUM_SHARDS)
    ]
    yield [url for _, url in booted]
    for process, _ in booted:
        process.terminate()
    for process, _ in booted:
        process.wait(timeout=30)


def _replicated_backend(replicated_dir, urls, **options) -> ShardedBackend:
    manifest = json.loads(
        (replicated_dir / "cluster" / "cluster.json").read_text()
    )
    ring = HashRing.from_spec(manifest["ring"])
    return ShardedBackend(
        [HTTPGraphBackend(url) for url in urls], ring, replicas=2, **options
    )


def _replicated_ensemble(replicated_dir, replicated_urls):
    with _replicated_backend(replicated_dir, replicated_urls) as cluster:
        return _ensemble(cluster)


def test_replicated_within_bound_of_unreplicated(
    cluster_dir, shard_urls, replicated_dir, replicated_urls
):
    """Acceptance check: k=2 fan-out stays within the bound of k=1."""
    sharded_paths, sharded_unique = _sharded_ensemble(cluster_dir, shard_urls)
    replicated_paths, replicated_unique = _replicated_ensemble(
        replicated_dir, replicated_urls
    )
    # Replication must not change a single step of any walk.
    assert replicated_paths == sharded_paths
    assert replicated_unique == sharded_unique

    sharded_seconds, _ = _best_of(_sharded_ensemble, cluster_dir, shard_urls)
    replicated_seconds, _ = _best_of(
        _replicated_ensemble, replicated_dir, replicated_urls
    )
    ratio = replicated_seconds / sharded_seconds
    print(
        f"\n{NUM_WALKERS}-walker x {WALK_STEPS}-step CNRW ensemble over "
        f"{NUM_NODES} nodes: {NUM_SHARDS} shards x1 replica "
        f"{sharded_seconds * 1e3:.1f} ms, x2 replicas "
        f"{replicated_seconds * 1e3:.1f} ms ({ratio:.2f}x; "
        f"bound {REQUIRED_MAX_RATIO}x)"
    )
    record_bench_result(
        "cluster.replicated_vs_unreplicated",
        nodes=NUM_NODES,
        shards=NUM_SHARDS,
        replicas=2,
        walkers=NUM_WALKERS,
        steps=WALK_STEPS,
        cpus=os.cpu_count(),
        sharded_seconds=sharded_seconds,
        replicated_seconds=replicated_seconds,
        ratio=ratio,
        max_ratio=REQUIRED_MAX_RATIO,
        concurrent_host=_CONCURRENT_HOST,
    )
    assert ratio <= REQUIRED_MAX_RATIO, (
        f"expected the replicated ensemble within {REQUIRED_MAX_RATIO}x of the "
        f"unreplicated cluster (x1 {sharded_seconds:.3f}s vs x2 "
        f"{replicated_seconds:.3f}s, {ratio:.2f}x)"
    )


def test_failover_mid_ensemble_is_bit_identical(local_backend, replicated_dir):
    """SIGKILL one shard process mid-ensemble: failover absorbs it.

    The ensemble runs against its own three shard subprocesses; a timer
    SIGKILLs one of them shortly after the walk starts.  With replication
    factor 2 every node the dead shard stored has a live replica, so the
    ensemble must complete with paths and accounting bit-identical to the
    local run, wherever in the schedule the kill lands.
    """
    import threading

    healthy = _ensemble(local_backend)
    booted = [
        _boot_serve(replicated_dir / "cluster" / f"shard-{shard:02d}")
        for shard in range(NUM_SHARDS)
    ]
    processes = [process for process, _ in booted]
    urls = [url for _, url in booted]
    killer = threading.Timer(0.2, processes[1].kill)
    try:
        manifest = json.loads(
            (replicated_dir / "cluster" / "cluster.json").read_text()
        )
        ring = HashRing.from_spec(manifest["ring"])
        clients = [HTTPGraphBackend(url, retries=0, timeout=10.0) for url in urls]
        with ShardedBackend(
            clients, ring, replicas=2, failover_cooldown=3600.0
        ) as cluster:
            killer.start()
            wounded = _ensemble(cluster)
        assert wounded == healthy
    finally:
        killer.cancel()
        for process in processes:
            process.kill()
        for process in processes:
            process.wait(timeout=30)
