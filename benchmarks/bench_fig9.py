"""Figure 9: GNRW grouping strategies on the Yelp-like graph.

Figure 9(a) estimates the average degree, Figure 9(b) the average reviews
count; each compares SRW against GNRW grouped by degree, by MD5 (random) and
by reviews count.  The paper's observation, asserted here, is twofold: every
GNRW variant beats SRW, and the best grouping is the one aligned with the
aggregate being estimated (degree grouping wins for average degree, reviews-
count grouping wins for average reviews count).
"""

from __future__ import annotations

from repro.experiments import figure9, render_comparison, render_report


def test_figure9_grouping_strategies(benchmark):
    reports = benchmark.pedantic(
        figure9,
        kwargs={"seed": 0, "scale": 1.0, "trials": 15, "budgets": (100, 250, 500, 750, 1000)},
        iterations=1,
        rounds=1,
    )
    degree_report, reviews_report = reports
    for report in reports:
        print()
        print(render_report(report))

    degree_table = degree_report.get("relative_error")
    reviews_table = reviews_report.get("relative_error")
    challengers = ["GNRW_By_Degree", "GNRW_By_MD5", "GNRW_By_ReviewsCount"]
    print()
    print("Figure 9(a) — estimating average degree")
    print(render_comparison(degree_table, baseline="SRW", challengers=challengers))
    print("Figure 9(b) — estimating average reviews count")
    print(render_comparison(reviews_table, baseline="SRW", challengers=challengers))

    # Every grouping strategy is competitive with SRW (the paper's margin is
    # larger on the 120k-node Yelp crawl; see EXPERIMENTS.md for the measured
    # gaps on the synthetic stand-in).
    for label in challengers:
        assert degree_table.dominates(label, "SRW", tolerance=0.25)
        assert reviews_table.dominates(label, "SRW", tolerance=0.25)
    # Aligned grouping wins (or ties within noise) for its own aggregate: the
    # attribute-aligned strategy must not lose to random (MD5) grouping by
    # more than the noise tolerance.
    assert degree_table.dominates("GNRW_By_Degree", "GNRW_By_MD5", tolerance=0.20)
    assert reviews_table.dominates("GNRW_By_ReviewsCount", "GNRW_By_MD5", tolerance=0.20)
