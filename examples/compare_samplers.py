#!/usr/bin/env python
"""Compare all five samplers of the paper at equal query cost.

Reproduces, at small scale and in text form, the comparison behind Figure 6:
MHRW, SRW, NB-SRW, CNRW and GNRW estimate the average degree of a
Google-Plus-like graph under increasing query budgets, and the mean relative
error of each sampler is reported per budget.  Every trial inside
``run_cost_sweep`` is a budgeted :class:`~repro.api.session.SamplingSession`
crawl, so the whole sweep exercises the same access-layer stack the
quickstart configures by hand.

Run with::

    python examples/compare_samplers.py
"""

from __future__ import annotations

from repro.estimation import AggregateQuery
from repro.experiments import (
    CostSweepConfig,
    WalkerSpec,
    render_comparison,
    render_report,
    run_cost_sweep,
)
from repro.graphs import load_dataset


def main() -> None:
    graph = load_dataset("googleplus_like", seed=7, scale=0.2)
    print(f"Graph: {graph.name}, {graph.number_of_nodes} nodes, "
          f"{graph.number_of_edges} edges, avg degree {graph.average_degree():.1f}")

    config = CostSweepConfig(
        walkers=(
            WalkerSpec.make("mhrw", label="MHRW", uniform_samples=True),
            WalkerSpec.make("srw", label="SRW"),
            WalkerSpec.make("nbsrw", label="NB-SRW"),
            WalkerSpec.make("cnrw", label="CNRW"),
            WalkerSpec.make("gnrw_by_degree", label="GNRW"),
        ),
        query=AggregateQuery.average_degree(),
        budgets=(100, 200, 400, 600),
        trials=8,
        seed=7,
    )
    report = run_cost_sweep(graph, config, title="sampler comparison")
    print()
    print(render_report(report))

    table = report.get("relative_error")
    print()
    print("Curve-mean comparison against the SRW baseline:")
    print(render_comparison(table, baseline="SRW",
                            challengers=["CNRW", "GNRW", "NB-SRW", "MHRW"]))


if __name__ == "__main__":
    main()
