#!/usr/bin/env python
"""GNRW grouping strategies and aggregate-aligned stratification (Figure 9).

The attribute used to group a node's neighbors is a free design choice in
GNRW.  This example estimates two aggregates on a Yelp-like graph — the
average degree and the average ``reviews_count`` — with GNRW grouped three
ways (by degree, by a random MD5 hash, and by reviews count) and shows that
grouping by the attribute being aggregated gives the most accurate estimates,
the paper's guidance from Section 4.1.  Each configuration is one
:class:`SamplingSession` with a custom grouping strategy passed to the walker.

Run with::

    python examples/grouping_strategies.py
"""

from __future__ import annotations

from repro import AggregateQuery, SamplingSession, ground_truth, relative_error
from repro.graphs import load_dataset
from repro.walks.grouping import DegreeGrouping, HashGrouping, NumericBinGrouping

BUDGET = 600
TRIALS = 6


def mean_error(graph, walker_name, query, seed_base, **walker_options):
    """Average relative error of `query` over TRIALS budgeted walks."""
    truth = ground_truth(graph, query)
    errors = []
    for trial in range(TRIALS):
        session = (
            SamplingSession(graph)
            .budget(BUDGET)
            .walker(walker_name, seed=seed_base + trial, **walker_options)
        )
        start = graph.nodes()[(trial * 17) % graph.number_of_nodes]
        session.run(start, max_steps=None)
        answer = session.estimate(query)
        errors.append(relative_error(answer.value, truth))
    return sum(errors) / len(errors)


def main() -> None:
    graph = load_dataset("yelp_like", seed=3, scale=1.0)
    print(f"Graph: {graph.name}, {graph.number_of_nodes} nodes, "
          f"{graph.number_of_edges} edges")

    strategies = {
        "SRW (baseline)": ("srw", {}),
        "GNRW by degree": ("gnrw", {"grouping": DegreeGrouping()}),
        "GNRW by MD5 (random)": ("gnrw", {"grouping": HashGrouping(num_groups=3)}),
        "GNRW by reviews_count": (
            "gnrw",
            {"grouping": NumericBinGrouping("reviews_count", bin_width=10.0)},
        ),
    }
    queries = {
        "average degree": AggregateQuery.average_degree(),
        "average reviews_count": AggregateQuery.average_attribute("reviews_count"),
    }

    for query_name, query in queries.items():
        print(f"\nEstimating {query_name} "
              f"(truth = {ground_truth(graph, query):.2f}, budget = {BUDGET} queries)")
        for label, (walker_name, options) in strategies.items():
            error = mean_error(graph, walker_name, query, seed_base=100, **options)
            print(f"  {label:<24s} mean relative error = {error:.3f}")
        print("  -> paper's guidance (Section 4.1): group by the attribute being "
              "aggregated; at this demo scale the margins are within noise, see "
              "benchmarks/bench_fig9.py for the full experiment")


if __name__ == "__main__":
    main()
