#!/usr/bin/env python
"""Simulate a rate-limited crawl and translate query cost into crawl time.

The practical motivation of the paper is that real OSN APIs are slow: Twitter
allowed 15 neighborhood calls per 15 minutes, so every query saved is a minute
of wall-clock time saved.  This example runs budgeted
:class:`~repro.api.session.SamplingSession` crawls, then attaches the Twitter
rate-limit policy on a simulated clock and reports how long (in simulated
hours) SRW and CNRW need to reach the same estimation accuracy.

Run with::

    python examples/crawl_with_rate_limits.py
"""

from __future__ import annotations

from repro import AggregateQuery, SamplingSession, ground_truth, relative_error
from repro.api import estimate_crawl_time, twitter_policy
from repro.api.ratelimit import SimulatedClock
from repro.graphs import load_dataset

TARGET_ERROR = 0.05
BUDGET_STEP = 50
MAX_BUDGET = 800
TRIALS = 5


def queries_needed(graph, walker_name, query, truth, seed_base):
    """Smallest budget (multiple of BUDGET_STEP) reaching TARGET_ERROR on average."""
    for budget in range(BUDGET_STEP, MAX_BUDGET + 1, BUDGET_STEP):
        errors = []
        for trial in range(TRIALS):
            session = (
                SamplingSession(graph)
                .budget(budget)
                .walker(walker_name, seed=seed_base + trial)
            )
            start = graph.nodes()[(trial * 13) % graph.number_of_nodes]
            result = session.run(start, max_steps=None)
            if not result.samples:
                errors.append(float("inf"))
                continue
            answer = session.estimate(query)
            errors.append(relative_error(answer.value, truth))
        if sum(errors) / len(errors) <= TARGET_ERROR:
            return budget
    return MAX_BUDGET


def main() -> None:
    graph = load_dataset("googleplus_like", seed=11, scale=0.4)
    query = AggregateQuery.average_degree()
    truth = ground_truth(graph, query)
    print(f"Graph: {graph.name}, {graph.number_of_nodes} nodes; "
          f"target: average degree within {TARGET_ERROR:.0%} of {truth:.2f}")

    print("\nQuery budget needed to reach the target error (avg over trials):")
    budgets = {}
    for name in ("srw", "cnrw", "gnrw_by_degree"):
        budgets[name] = queries_needed(graph, name, query, truth, seed_base=500)
        crawl_seconds = estimate_crawl_time(budgets[name], twitter_policy())
        print(f"  {name:<16s} {budgets[name]:>5d} unique queries "
              f"=> {crawl_seconds / 3600:.1f} simulated hours under the Twitter limit")

    saved = budgets["srw"] - min(budgets["cnrw"], budgets["gnrw_by_degree"])
    saved_seconds = estimate_crawl_time(max(saved, 0), twitter_policy())
    print(f"\nHistory-aware walks save about {max(saved, 0)} queries, i.e. roughly "
          f"{saved_seconds / 3600:.1f} hours of crawling.")

    # A single crawl wired directly to the rate limiter, to show the clock API:
    # the session inserts a rate-limit layer into the stack and every billable
    # query advances the shared simulated clock.
    clock = SimulatedClock()
    session = (
        SamplingSession(graph)
        .budget(100)
        .rate_limit(twitter_policy(), clock=clock)
        .walker("cnrw", seed=1)
    )
    session.run(graph.nodes()[0], max_steps=None)
    print(f"\nA 100-query CNRW crawl takes {clock.now / 3600:.2f} simulated hours "
          f"under the 15-calls/15-minutes policy.")


if __name__ == "__main__":
    main()
