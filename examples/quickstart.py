#!/usr/bin/env python
"""Quickstart: estimate the average degree of a social network by crawling it.

This example walks through the full pipeline on a synthetic Facebook-like
graph using the :class:`~repro.api.session.SamplingSession` facade:

1. build (or load) a graph — the "online social network";
2. configure a session: a query budget of 500 unique queries (the paper's
   cost measure) over the restrictive access interface, and a history-aware
   CNRW walker;
3. run the walk and turn the degree-biased samples into an unbiased estimate
   of the average degree, compared with the ground truth.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AggregateQuery,
    SamplingSession,
    ground_truth,
    load_dataset,
    relative_error,
)


def main() -> None:
    # 1. The "online social network": a synthetic stand-in for the SNAP
    #    Facebook graph.  Any Graph works here, including one loaded from a
    #    real SNAP edge list via repro.load_edge_list(...).
    graph = load_dataset("facebook_like", seed=42)
    print(f"Graph: {graph.name} with {graph.number_of_nodes} nodes, "
          f"{graph.number_of_edges} edges")

    # 2. One fluent sentence configures the whole access layer: neighbors-of-
    #    one-node queries only, a budget of 500 unique queries, and a CNRW
    #    walker.  Swap "cnrw" for "srw", "nbsrw", "gnrw_by_degree" or "mhrw"
    #    to compare samplers, or add .backend("csr") / .rate_limit(...) to
    #    change how the graph is served.
    session = SamplingSession(graph, seed=42).budget(500).walker("cnrw", seed=42)

    # 3. Walk until the budget is gone (start node drawn uniformly).
    result = session.run(max_steps=None)
    print(f"Walk finished: {result.steps} steps, {result.unique_queries} unique "
          f"queries, {len(result.samples)} samples")

    # 4. Aggregate estimation with the degree-bias correction.
    query = AggregateQuery.average_degree()
    answer = session.estimate(query)
    truth = ground_truth(graph, query)
    error = relative_error(answer.value, truth)
    low, high = answer.confidence_interval()
    print(f"Estimated average degree: {answer.value:.3f}  (95% CI {low:.3f} .. {high:.3f})")
    print(f"True average degree:      {truth:.3f}")
    print(f"Relative error:           {error:.2%}")


if __name__ == "__main__":
    main()
