#!/usr/bin/env python
"""Quickstart: estimate the average degree of a social network by crawling it.

This example walks through the full pipeline on a synthetic Facebook-like
graph:

1. build (or load) a graph and wrap it in the restrictive-access API with a
   query budget, exactly like a third-party crawler would experience it;
2. run a history-aware random walk (CNRW) against that API;
3. turn the degree-biased samples into an unbiased estimate of the average
   degree and compare it with the ground truth.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AggregateQuery,
    GraphAPI,
    QueryBudget,
    estimate,
    ground_truth,
    load_dataset,
    make_walker,
    relative_error,
)


def main() -> None:
    # 1. The "online social network": a synthetic stand-in for the SNAP
    #    Facebook graph.  Any Graph works here, including one loaded from a
    #    real SNAP edge list via repro.load_edge_list(...).
    graph = load_dataset("facebook_like", seed=42)
    print(f"Graph: {graph.name} with {graph.number_of_nodes} nodes, "
          f"{graph.number_of_edges} edges")

    # 2. The restrictive access interface: neighbors-of-one-node queries only,
    #    with a budget of 500 unique queries (the paper's cost measure).
    api = GraphAPI(graph, budget=QueryBudget(500))

    # 3. A history-aware random walk.  Swap "cnrw" for "srw", "nbsrw",
    #    "gnrw_by_degree" or "mhrw" to compare samplers.
    walker = make_walker("cnrw", api=api, seed=42)
    start = api.random_node(seed=42)
    result = walker.run(start, max_steps=None)  # walk until the budget is gone
    print(f"Walk finished: {result.steps} steps, {result.unique_queries} unique "
          f"queries, {len(result.samples)} samples")

    # 4. Aggregate estimation with the degree-bias correction.
    query = AggregateQuery.average_degree()
    answer = estimate(result.samples, query)
    truth = ground_truth(graph, query)
    error = relative_error(answer.value, truth)
    low, high = answer.confidence_interval()
    print(f"Estimated average degree: {answer.value:.3f}  (95% CI {low:.3f} .. {high:.3f})")
    print(f"True average degree:      {truth:.3f}")
    print(f"Relative error:           {error:.2%}")


if __name__ == "__main__":
    main()
