#!/usr/bin/env python
"""Theorem 3 in action: escaping a barbell graph.

A barbell graph (two cliques joined by a single bridge edge) is the worst case
for a memoryless random walk: the walk keeps bouncing inside one clique and
only rarely finds the bridge.  Theorem 3 of the paper shows CNRW's circulation
raises the probability of taking the bridge by a factor of roughly ln|G1|.
This example measures the crossing probability of SRW and CNRW empirically for
several clique sizes — each trial is one :class:`SamplingSession` walk — and
prints the ratio next to the theoretical bound.

Run with::

    python examples/barbell_escape.py
"""

from __future__ import annotations

import math

from repro import SamplingSession, barbell_graph

STEPS = 400
TRIALS = 200


def crossing_probability(walker_name, clique_size, seed_base):
    graph = barbell_graph(clique_size)
    other_side = set(range(clique_size, 2 * clique_size))
    crossings = 0
    for trial in range(TRIALS):
        session = SamplingSession(graph).walker(walker_name, seed=seed_base + trial)
        result = session.run(trial % clique_size, max_steps=STEPS)
        if any(node in other_side for node in result.path):
            crossings += 1
    return crossings / TRIALS


def main() -> None:
    print(f"Crossing probability within {STEPS} steps ({TRIALS} trials per cell)\n")
    print(f"{'clique':>7s} {'SRW':>8s} {'CNRW':>8s} {'ratio':>7s} {'ln|G1| bound':>13s}")
    for clique_size in (10, 20, 30, 40):
        srw = crossing_probability("srw", clique_size, seed_base=1_000)
        cnrw = crossing_probability("cnrw", clique_size, seed_base=2_000)
        ratio = cnrw / srw if srw > 0 else float("inf")
        bound = clique_size / (clique_size - 1) * math.log(clique_size)
        print(f"{clique_size:>7d} {srw:>8.3f} {cnrw:>8.3f} {ratio:>7.2f} {bound:>13.2f}")
    print("\nTheorem 3 compares the *per-visit* bridge-taking probabilities; the")
    print("whole-walk crossing probabilities shown here compress that gap, but")
    print("CNRW should consistently match or beat SRW, with the advantage most")
    print("visible at larger clique sizes where SRW is increasingly stuck.")


if __name__ == "__main__":
    main()
