"""Setuptools shim.

Kept so ``pip install -e .`` works in offline environments where the ``wheel``
package (needed by the PEP 517 editable path) is unavailable; all project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
